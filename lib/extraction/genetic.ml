type config = {
  population : int;
  generations : int;
  tournament : int;
  crossover_rate : float;
  mutation_rate : float;
  elitism : int;
  time_limit : float;
}

let default_config =
  {
    population = 48;
    generations = 200;
    tournament = 3;
    crossover_rate = 0.9;
    mutation_rate = 0.03;
    elitism = 2;
    time_limit = 30.0;
  }

(* A chromosome fixes, for every e-class, which member e-node the decode
   would pick when the class is needed. *)
type individual = { genes : int array; mutable fitness : float }

let decode g genes =
  let pick = Array.mapi (fun c gene -> g.Egraph.class_nodes.(c).(gene)) genes in
  Egraph.Solution.of_node_choice g pick

let genes_of_solution g s =
  Array.init (Egraph.num_classes g) (fun c ->
      match s.Egraph.Solution.choice.(c) with
      | Some node ->
          let members = g.Egraph.class_nodes.(c) in
          let idx = ref 0 in
          Array.iteri (fun k n -> if n = node then idx := k) members;
          !idx
      | None -> 0)

let random_genes rng g =
  Array.init (Egraph.num_classes g) (fun c ->
      Rng.int rng (Array.length g.Egraph.class_nodes.(c)))

let extract ?(config = default_config) ?model rng g =
  let model = match model with Some m -> m | None -> Cost_model.of_egraph g in
  let deadline = Timer.deadline_after config.time_limit in
  let trace = ref [] in
  let best = ref None in
  let best_fitness = ref infinity in
  let quarantined = ref 0 in
  (* NaN is the "not yet evaluated" sentinel, so an individual whose
     *cost* is NaN (a poisoned cost model, say) must never keep it:
     tournament comparisons against NaN are all false and the rot
     spreads through selection. Quarantine such individuals — re-seed
     their genes (bounded retries) and failing that pin fitness to
     +inf so selection discards them. *)
  let evaluate ind =
    if Float.is_nan ind.fitness then begin
      let s = ref (decode g ind.genes) in
      let f = ref (Cost_model.dense_solution model g !s) in
      if Float.is_nan !f then begin
        incr quarantined;
        let retries = ref 0 in
        while Float.is_nan !f && !retries < 3 do
          incr retries;
          let genes = random_genes rng g in
          Array.blit genes 0 ind.genes 0 (Array.length genes);
          s := decode g ind.genes;
          f := Cost_model.dense_solution model g !s
        done;
        if Float.is_nan !f then f := infinity
      end;
      ind.fitness <- !f;
      if ind.fitness < !best_fitness then begin
        best_fitness := ind.fitness;
        best := Some !s;
        trace := (Timer.elapsed deadline, ind.fitness) :: !trace
      end
    end;
    ind.fitness
  in
  let fresh genes = { genes; fitness = nan } in
  let run () =
    (* Seed: greedy solution + random valid solutions + uniform noise. *)
    let seeds = Vec.create () in
    (match (Greedy.extract g).Extractor.solution with
    | Some s -> Vec.push seeds (fresh (genes_of_solution g s))
    | None -> ());
    List.iter
      (fun s -> Vec.push seeds (fresh (genes_of_solution g s)))
      (Random_walk.solutions rng g ~count:(config.population / 3));
    while Vec.length seeds < config.population do
      Vec.push seeds (fresh (random_genes rng g))
    done;
    let pop = ref (Vec.to_array seeds) in
    Array.iter (fun ind -> ignore (evaluate ind)) !pop;
    let tournament_select () =
      let winner = ref !pop.(Rng.int rng (Array.length !pop)) in
      for _ = 2 to config.tournament do
        let challenger = !pop.(Rng.int rng (Array.length !pop)) in
        if evaluate challenger < evaluate !winner then winner := challenger
      done;
      !winner
    in
    let crossover a b =
      let genes = Array.copy a.genes in
      if Rng.uniform rng < config.crossover_rate then
        Array.iteri (fun c _ -> if Rng.bool rng then genes.(c) <- b.genes.(c)) genes;
      genes
    in
    let mutate genes =
      Array.iteri
        (fun c _ ->
          if Rng.uniform rng < config.mutation_rate then
            genes.(c) <- Rng.int rng (Array.length g.Egraph.class_nodes.(c)))
        genes
    in
    let gen = ref 0 in
    while !gen < config.generations && not (Timer.expired deadline) do
      incr gen;
      let sorted = Array.copy !pop in
      Array.sort (fun a b -> compare (evaluate a) (evaluate b)) sorted;
      let next = Vec.create () in
      for e = 0 to min config.elitism (Array.length sorted) - 1 do
        Vec.push next sorted.(e)
      done;
      while Vec.length next < config.population do
        let a = tournament_select () and b = tournament_select () in
        let genes = crossover a b in
        mutate genes;
        Vec.push next (fresh genes)
      done;
      pop := Vec.to_array next;
      Array.iter (fun ind -> ignore (evaluate ind)) !pop
    done
  in
  let (), time_s = Timer.time run in
  let notes =
    if !quarantined > 0 then [ ("quarantined", string_of_int !quarantined) ] else []
  in
  Extractor.make_with_model ~trace:(List.rev !trace) ~notes ~method_name:"genetic" ~time_s
    ~model g !best
