(** Common result type shared by every extraction method.

    All extractors in this repository — the heuristics, the ILP
    baselines, the genetic algorithm and SmoothE — report through this
    record so the evaluation harness can tabulate them uniformly
    (Tables 2–5). *)

type r = {
  method_name : string;
  solution : Egraph.Solution.s option;  (** [None] when the method failed to find a valid one *)
  cost : float;  (** DAG cost under the evaluation model; [infinity] on failure *)
  time_s : float;
  proved_optimal : bool;
  trace : (float * float) list;
      (** anytime curve: (seconds, best cost so far) improvements *)
  notes : (string * string) list;
}

val make :
  ?proved_optimal:bool ->
  ?trace:(float * float) list ->
  ?notes:(string * string) list ->
  method_name:string ->
  time_s:float ->
  Egraph.t ->
  Egraph.Solution.s option ->
  r
(** Validates and costs the solution with the e-graph's linear costs. *)

val make_with_model :
  ?proved_optimal:bool ->
  ?trace:(float * float) list ->
  ?notes:(string * string) list ->
  method_name:string ->
  time_s:float ->
  model:Cost_model.t ->
  Egraph.t ->
  Egraph.Solution.s option ->
  r

val failed : method_name:string -> time_s:float -> r

val pp : Format.formatter -> r -> unit
