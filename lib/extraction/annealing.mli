(** Simulated-annealing extractor.

    A second meta-heuristic baseline in the family the paper situates the
    genetic algorithm in (§5.5): like the GA it handles arbitrary cost
    models (including non-linear ones) and explores the discrete choice
    space directly; unlike the GA it walks a single state — one candidate
    e-node per e-class — flipping one class's choice per step and
    accepting uphill moves with the Metropolis probability under a
    geometric temperature schedule. Useful as an ablation point between
    greedy (T = 0) and random search (T = ∞). *)

type config = {
  steps : int;
  t_start : float;  (** initial temperature, in cost units *)
  t_end : float;
  restarts : int;  (** independent annealing runs; the best wins *)
  time_limit : float;  (** seconds; <= 0 = unlimited *)
}

val default_config : config

val extract :
  ?config:config -> ?model:Cost_model.t -> Rng.t -> Egraph.t -> Extractor.r
(** The walk starts from the greedy solution (plus random-walk restarts);
    infeasible (cyclic) decodes are rejected moves. *)
