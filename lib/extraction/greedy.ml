let class_costs_with g costs =
  let n = Egraph.num_nodes g and m = Egraph.num_classes g in
  let class_cost = Array.make m infinity in
  let best_node = Array.make m (-1) in
  let queue = Queue.create () in
  let in_queue = Array.make n false in
  let enqueue i =
    if not in_queue.(i) then begin
      in_queue.(i) <- true;
      Queue.add i queue
    end
  in
  (* Start from leaves: e-nodes without child e-classes. *)
  for i = 0 to n - 1 do
    if Array.length g.Egraph.children.(i) = 0 then enqueue i
  done;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    in_queue.(i) <- false;
    let agg =
      Array.fold_left
        (fun acc child -> acc +. class_cost.(child))
        costs.(i) g.Egraph.children.(i)
    in
    let c = g.Egraph.node_class.(i) in
    if agg < class_cost.(c) then begin
      class_cost.(c) <- agg;
      best_node.(c) <- i;
      (* Wake every parent e-node of this class. *)
      let seg = g.Egraph.parent_seg in
      let start = seg.Segments.starts.(c) and len = seg.Segments.lens.(c) in
      for k = start to start + len - 1 do
        enqueue g.Egraph.parent_edge_node.(k)
      done
    end
  done;
  class_cost, best_node

let class_costs g = class_costs_with g g.Egraph.costs

let decode g best_node =
  if best_node.(g.Egraph.root) < 0 then None
  else begin
    (* Every class reachable through best choices is derivable, so the
       picks can be materialised directly. *)
    let pick = Array.map (fun b -> if b >= 0 then b else 0) best_node in
    let s = Egraph.Solution.of_node_choice g pick in
    if Egraph.Solution.is_valid g s then Some s else None
  end

let extract_with_costs g ~costs =
  let (_, best_node), time_s = Timer.time (fun () -> class_costs_with g costs) in
  Extractor.make ~method_name:"heuristic" ~time_s g (decode g best_node)

let extract g = extract_with_costs g ~costs:g.Egraph.costs
