(** Hybrid heuristic-pruned exact extraction (the e-boost pipeline).

    SmoothE (or any heuristic) produces an incumbent and, optionally,
    per-node marginals; this module turns them into a tightened MILP and
    finishes with branch-and-bound:

    - {b fixing rule}: an e-class is fixed to the incumbent's choice
      when the marginals are concentrated on it (class argmax with
      within-class probability >= [fix_threshold]); its other members
      are dropped from the encoding. Heuristic — it may exclude the
      true optimum, which is why a proof is never claimed from this
      phase alone.
    - {b bound cut}: the threshold [UB(+slack)] derived from the
      incumbent cost. With nonnegative costs it soundly eliminates every
      node whose own cost exceeds the cut (the optimum cannot contain
      one). It is applied as node {e elimination} rather than as the
      explicit LP row [sum_i cost_i s_i <= UB] ({!Ilp.extract}'s
      [cost_bound]): the row is equally sound but dense, so it slows
      every simplex solve, while branch-and-bound already prunes on the
      warm-started incumbent.
    - {b warm start}: the incumbent is lifted into each encoding as the
      initial MILP incumbent, so pruning starts at full strength.

    Extraction runs in up to two solves: a {e pruned} solve over the
    heuristically-shrunken encoding (fast, strong incumbents), then a
    {e verify} solve over the full problem reduced only by the sound
    eliminations, whose bound and [proved_optimal] are valid for the
    original instance. When fixing removes nothing the two coincide and
    only the sound solve runs, with the whole budget. *)

type config = {
  time_limit : float;  (** seconds across all phases; <= 0 = unlimited *)
  node_limit : int;  (** per-phase branch-and-bound node cap *)
  profile : Bnb.profile;
  fix_threshold : float;
      (** fix a class when the incumbent's choice is the class argmax
          with at least this within-class marginal mass (default 0.9;
          > 1.0 disables fixing) *)
  bound_gap : float;
      (** extra relative slack on the bound cut (default 0): rhs =
          UB + tolerance + bound_gap * max 1 |UB| *)
  verify : bool;
      (** run the sound full-problem solve after the pruned one
          (default true; without it no optimality is ever claimed when
          fixing pruned anything) *)
}

val default_config : config

type phase = {
  phase_name : string;  (** "pruned", "verify" or "full" *)
  phase_vars : int;  (** e-nodes in that phase's shrunken encoding *)
  phase_nodes : int;  (** branch-and-bound nodes explored *)
  phase_obj : float;
  phase_bound : float;
  phase_proved : bool;  (** proved for that phase's (possibly pruned) space *)
  phase_time : float;
}

type outcome = {
  result : Extractor.r;  (** method_name "hybrid"; [proved_optimal] is sound *)
  fixed_classes : int;
  dropped_by_fixing : int;  (** e-nodes removed by the heuristic fixing rule *)
  dropped_by_bound : int;  (** e-nodes removed by the sound cost-bound rule *)
  phases : phase list;  (** chronological *)
  bound : float;  (** proven lower bound on the full problem; [neg_infinity] if none *)
  gap : float;  (** relative incumbent-bound gap; 0 when proved *)
}

val extract :
  ?config:config ->
  ?pool:Pool.t ->
  ?health:Health.log ->
  ?incumbent:Egraph.Solution.s ->
  ?marginals:float array ->
  Egraph.t ->
  outcome
(** The pipeline seeds from the {e better} of [incumbent] and the free
    greedy-DAG heuristic, so it can never return a worse solution than
    greedy (an invalid [incumbent] is rejected with a
    [Warm_start_rejected] health event). [marginals] is a per-node
    probability vector (e.g. SmoothE's final per-class softmax cp for
    its incumbent seed); without it the fixing rule is inert and the
    pipeline reduces to bound-cut + warm-started exact solving.
    [pool] parallelises branch-and-bound waves (bit-identical results
    at any size). *)
