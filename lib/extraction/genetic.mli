(** Genetic-algorithm extractor (§5.5's meta-heuristic baseline).

    Chromosomes assign one candidate e-node per e-class; decoding
    materialises the selection reachable from the root, and fitness is
    the cost model applied to the decoded solution (infeasible decodes
    score infinity). Tournament selection, per-class uniform crossover,
    point mutation, elitism. Flexibly supports non-linear cost models —
    but, as the paper finds, tends to get stuck in local minima on large
    search spaces. *)

type config = {
  population : int;
  generations : int;  (** upper bound; the deadline can stop earlier *)
  tournament : int;
  crossover_rate : float;
  mutation_rate : float;
  elitism : int;
  time_limit : float;  (** seconds; <= 0 = unlimited *)
}

val default_config : config

val extract : ?config:config -> ?model:Cost_model.t -> Rng.t -> Egraph.t -> Extractor.r
(** [model] defaults to the e-graph's linear costs. The population is
    seeded with random valid solutions plus the greedy solution. *)
