type config = {
  steps : int;
  t_start : float;
  t_end : float;
  restarts : int;
  time_limit : float;
}

let default_config =
  { steps = 4000; t_start = 10.0; t_end = 0.05; restarts = 3; time_limit = 20.0 }

let genes_of_solution g s =
  Array.init (Egraph.num_classes g) (fun c ->
      match s.Egraph.Solution.choice.(c) with
      | Some node ->
          let idx = ref 0 in
          Array.iteri (fun k n -> if n = node then idx := k) g.Egraph.class_nodes.(c);
          !idx
      | None -> 0)

let decode g genes =
  let pick = Array.mapi (fun c gene -> g.Egraph.class_nodes.(c).(gene)) genes in
  Egraph.Solution.of_node_choice g pick

let extract ?(config = default_config) ?model rng g =
  let model = match model with Some m -> m | None -> Cost_model.of_egraph g in
  let deadline = Timer.deadline_after config.time_limit in
  let m = Egraph.num_classes g in
  let best_cost = ref infinity in
  let best = ref None in
  let trace = ref [] in
  let consider s cost =
    if cost < !best_cost -. 1e-12 then begin
      best_cost := cost;
      best := Some s;
      trace := (Timer.elapsed deadline, cost) :: !trace
    end
  in
  (* only classes with a real choice are worth flipping *)
  let flippable =
    Array.of_list
      (List.filter
         (fun c -> Array.length g.Egraph.class_nodes.(c) > 1)
         (List.init m Fun.id))
  in
  let run_one start_genes =
    let genes = Array.copy start_genes in
    let current = decode g genes in
    let current_cost = ref (Cost_model.dense_solution model g current) in
    if Float.is_finite !current_cost then consider current !current_cost;
    let cooling =
      if config.steps <= 1 then 1.0
      else (config.t_end /. config.t_start) ** (1.0 /. float_of_int (config.steps - 1))
    in
    let temp = ref config.t_start in
    (try
       for step = 1 to config.steps do
         if Timer.poll deadline step then raise Exit;
         if Array.length flippable > 0 then begin
           let c = flippable.(Rng.int rng (Array.length flippable)) in
           let old_gene = genes.(c) in
           let size = Array.length g.Egraph.class_nodes.(c) in
           let fresh = (old_gene + 1 + Rng.int rng (size - 1)) mod size in
           genes.(c) <- fresh;
           let candidate = decode g genes in
           let cost = Cost_model.dense_solution model g candidate in
           let accept =
             if not (Float.is_finite cost) then false
             else if cost <= !current_cost then true
             else Rng.uniform rng < Float.exp ((!current_cost -. cost) /. Float.max 1e-9 !temp)
           in
           if accept then begin
             current_cost := cost;
             consider candidate cost
           end
           else genes.(c) <- old_gene
         end;
         temp := !temp *. cooling
       done
     with Exit -> ())
  in
  let run () =
    (* restart 0: greedy seed; later restarts: random valid solutions *)
    (match (Greedy.extract g).Extractor.solution with
    | Some s -> run_one (genes_of_solution g s)
    | None -> ());
    for _ = 2 to config.restarts do
      if not (Timer.expired deadline) then
        match Random_walk.solution rng g with
        | Some s -> run_one (genes_of_solution g s)
        | None -> ()
    done
  in
  let (), time_s = Timer.time run in
  Extractor.make_with_model ~trace:(List.rev !trace) ~method_name:"annealing" ~time_s ~model g
    !best
