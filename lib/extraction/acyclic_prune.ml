type report = {
  removed_nodes : int;
  removed_classes : int;
  egraph : Egraph.t option;
  old_node_of_new : int array;
}

(* A node is pruned when (a) one of its child-class edges stays inside a
   non-trivial SCC (it could participate in a cycle), or (b) one of its
   child classes has lost every member — cascading until stable. *)
let prune g =
  let n = Egraph.num_nodes g in
  let m = Egraph.num_classes g in
  let removed = Array.make n false in
  let scc = g.Egraph.scc_of_class in
  let scc_size = Array.make (Array.length g.Egraph.sccs) 0 in
  Array.iteri (fun ci members -> scc_size.(ci) <- Array.length members) g.Egraph.sccs;
  (* (a) cycle participation *)
  for i = 0 to n - 1 do
    let ci = g.Egraph.node_class.(i) in
    Array.iter
      (fun j ->
        if scc.(j) = scc.(ci) && (scc_size.(scc.(j)) > 1 || j = ci) then removed.(i) <- true)
      g.Egraph.children.(i)
  done;
  (* (b) cascade: nodes depending on emptied classes *)
  let class_alive c =
    Array.exists (fun i -> not removed.(i)) g.Egraph.class_nodes.(c)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if
        (not removed.(i)) && Array.exists (fun j -> not (class_alive j)) g.Egraph.children.(i)
      then begin
        removed.(i) <- true;
        changed := true
      end
    done
  done;
  let removed_nodes = Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 removed in
  let removed_classes = ref 0 in
  for c = 0 to m - 1 do
    if not (class_alive c) then incr removed_classes
  done;
  match Egraph.restrict g ~keep:(Array.map not removed) with
  | None ->
      { removed_nodes; removed_classes = !removed_classes; egraph = None; old_node_of_new = [||] }
  | Some (pruned, old_node_of_new) ->
      {
        removed_nodes;
        removed_classes = !removed_classes;
        egraph = Some pruned;
        old_node_of_new;
      }

let extract ?(time_limit = 60.0) ?(profile = Bnb.cplex_like) g =
  let (rep, prune_time) = Timer.time (fun () -> prune g) in
  match rep.egraph with
  | None -> Extractor.failed ~method_name:"ilp-pruned" ~time_s:prune_time
  | Some pruned ->
      let r = Ilp.extract ~time_limit ~profile pruned in
      let lifted =
        match r.Extractor.solution with
        | None -> None
        | Some s ->
            (* translate the selection back to original node ids *)
            let pairs =
              List.map
                (fun new_node ->
                  let old_node = rep.old_node_of_new.(new_node) in
                  (g.Egraph.node_class.(old_node), old_node))
                (Egraph.Solution.selected_nodes pruned s)
            in
            Some (Egraph.Solution.of_choices g pairs)
      in
      Extractor.make
        ~proved_optimal:false (* optimal for the pruned space only *)
        ~notes:
          [
            ("pruned_nodes", string_of_int rep.removed_nodes);
            ("pruned_classes", string_of_int rep.removed_classes);
          ]
        ~method_name:"ilp-pruned"
        ~time_s:(prune_time +. r.Extractor.time_s)
        g lifted
