type r = {
  method_name : string;
  solution : Egraph.Solution.s option;
  cost : float;
  time_s : float;
  proved_optimal : bool;
  trace : (float * float) list;
  notes : (string * string) list;
}

let make_with_model ?(proved_optimal = false) ?(trace = []) ?(notes = []) ~method_name ~time_s
    ~model g solution =
  let solution, cost =
    match solution with
    | None -> None, infinity
    | Some s ->
        let c = Cost_model.dense_solution model g s in
        if Float.is_finite c then Some s, c else None, infinity
  in
  { method_name; solution; cost; time_s; proved_optimal; trace; notes }

let make ?proved_optimal ?trace ?notes ~method_name ~time_s g solution =
  make_with_model ?proved_optimal ?trace ?notes ~method_name ~time_s
    ~model:(Cost_model.of_egraph g) g solution

let failed ~method_name ~time_s =
  {
    method_name;
    solution = None;
    cost = infinity;
    time_s;
    proved_optimal = false;
    trace = [];
    notes = [];
  }

let pp fmt r =
  Format.fprintf fmt "%-12s cost=%s time=%.2fs%s" r.method_name
    (if Float.is_finite r.cost then Printf.sprintf "%.4g" r.cost else "FAILED")
    r.time_s
    (if r.proved_optimal then " (optimal)" else "")
