(** "Heuristic+": the improved bottom-up extractor from the extraction
    gym the paper benchmarks (§5.1).

    Like {!Greedy} this propagates costs bottom-up, but each e-class
    carries the *set* of e-nodes its best derivation uses, so shared
    subexpressions are costed once (DAG cost) instead of per use. On
    e-graphs rich in reuse (impress in Table 2, the adversarial NP-hard
    datasets in Table 4) this matches the paper's observation that
    heuristic+ improves on plain greedy, while remaining a heuristic —
    the union-of-children estimate is not optimal. *)

val extract : ?max_passes:int -> Egraph.t -> Extractor.r
