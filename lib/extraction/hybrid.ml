type config = {
  time_limit : float;
  node_limit : int;
  profile : Bnb.profile;
  fix_threshold : float;
  bound_gap : float;
  verify : bool;
}

let default_config =
  {
    time_limit = 60.0;
    node_limit = 200_000;
    profile = Bnb.cplex_like;
    fix_threshold = 0.9;
    bound_gap = 0.0;
    verify = true;
  }

type phase = {
  phase_name : string;
  phase_vars : int;
  phase_nodes : int;
  phase_obj : float;
  phase_bound : float;
  phase_proved : bool;
  phase_time : float;
}

type outcome = {
  result : Extractor.r;
  fixed_classes : int;
  dropped_by_fixing : int;
  dropped_by_bound : int;
  phases : phase list;
  bound : float;
  gap : float;
}

let member = "hybrid"

(* The objective bound cut's right-hand side: the incumbent cost plus
   the solver's own relative tolerance (so the incumbent itself, and any
   solution within round-off of it, stays feasible under the cut) plus
   the user's optional relative slack. *)
let cut_rhs config ub =
  if Float.is_finite ub then
    Some (ub +. Bnb.tolerance ub +. (config.bound_gap *. Float.max 1.0 (Float.abs ub)))
  else None

let extract ?(config = default_config) ?pool ?health ?incumbent ?marginals g =
  Trace.with_span ~cat:"extraction"
    ~attrs:
      (if !Obs.on then
         [
           ("profile", config.profile.Bnb.profile_name);
           ("classes", string_of_int (Egraph.num_classes g));
         ]
       else [])
    "hybrid.extract"
  @@ fun () ->
  let deadline = Timer.deadline_after config.time_limit in
  let record kind detail =
    match health with Some log -> Health.record log ~member kind detail | None -> ()
  in
  let n = Egraph.num_nodes g in
  (* ------------------------------------------------------------------
     Stage 0: an incumbent. The caller's (SmoothE's, typically), or the
     free greedy-DAG heuristic. Everything downstream — the bound cut,
     the class fixing, the warm start — hangs off it. *)
  let seed_incumbent =
    let caller =
      match incumbent with
      | Some s when Egraph.Solution.is_valid g s -> Some s
      | Some _ ->
          record Health.Warm_start_rejected
            "hybrid incumbent is not a valid extraction; using greedy";
          None
      | None -> None
    in
    (* the free heuristic is always worth the look: the cut, the fixing
       and the warm start all hang off the seed, so seed from the better
       of the caller's incumbent and greedy-DAG — the pipeline then can
       never lose to the heuristic it gets for free *)
    match (caller, (Greedy_dag.extract g).Extractor.solution) with
    | Some a, Some b ->
        Some
          (if Egraph.Solution.dag_cost g b < Egraph.Solution.dag_cost g a then b else a)
    | Some a, None -> Some a
    | None, b -> b
  in
  let ub0 =
    match seed_incumbent with Some s -> Egraph.Solution.dag_cost g s | None -> infinity
  in
  let trace_acc = ref [] in
  let best_cost = ref infinity in
  let note_cost c =
    if c < !best_cost then begin
      best_cost := c;
      trace_acc := (Timer.elapsed deadline, c) :: !trace_acc
    end
  in
  if Float.is_finite ub0 then note_cost ub0;
  let best = ref seed_incumbent in
  let consider lifted =
    match lifted with
    | Some s when Egraph.Solution.is_valid g s ->
        let c = Egraph.Solution.dag_cost g s in
        if c < !best_cost then begin
          best := Some s;
          note_cost c
        end
    | _ -> ()
  in
  (* ------------------------------------------------------------------
     Stage 1: the heuristic shrink. A class is fixed to the incumbent's
     choice when the marginals are concentrated on it (>= fix_threshold
     after within-class normalisation, and it is the class argmax):
     every other member of the class is dropped. This prunes
     aggressively and can, in principle, exclude the optimum — which is
     exactly why stage 3 re-proves on a soundly-reduced full problem. *)
  let keep = Array.make n true in
  let fixed_classes = ref 0 in
  let dropped_by_fixing = ref 0 in
  (match (seed_incumbent, marginals) with
  | Some s, Some cp when config.fix_threshold <= 1.0 && Array.length cp = n ->
      for c = 0 to Egraph.num_classes g - 1 do
        match s.Egraph.Solution.choice.(c) with
        | Some pick ->
            let members = g.Egraph.class_nodes.(c) in
            if Array.length members > 1 then begin
              let total =
                Array.fold_left (fun acc i -> acc +. Float.max 0.0 cp.(i)) 0.0 members
              in
              if total > 0.0 then begin
                let p_pick = Float.max 0.0 cp.(pick) /. total in
                let is_argmax = Array.for_all (fun i -> cp.(i) <= cp.(pick)) members in
                if is_argmax && p_pick >= config.fix_threshold then begin
                  incr fixed_classes;
                  Array.iter
                    (fun i ->
                      if i <> pick && keep.(i) then begin
                        keep.(i) <- false;
                        incr dropped_by_fixing
                      end)
                    members
                end
              end
            end
        | None -> ()
      done
  | _ -> ());
  (* The safe reduction: with nonnegative costs, a node whose own cost
     already exceeds the bound cut cannot appear in any solution at
     least as good as the incumbent — dropping it preserves the optimum
     exactly, so it is allowed in the proving phase too. *)
  let nonneg = Array.for_all (fun c -> c >= 0.0) g.Egraph.costs in
  let safe_drops ub acc_counter mask =
    match cut_rhs config ub with
    | Some cut when nonneg ->
        for i = 0 to n - 1 do
          if mask.(i) && g.Egraph.costs.(i) > cut then begin
            mask.(i) <- false;
            incr acc_counter
          end
        done
    | _ -> ()
  in
  let dropped_by_bound = ref 0 in
  safe_drops ub0 dropped_by_bound keep;
  (* ------------------------------------------------------------------
     A solve over a restricted copy of the graph: rebuild, map the warm
     start forward, encode with the bound cut, branch-and-bound, lift
     the incumbent back to original node ids. *)
  let solve_on ~keep_mask ~budget ~warm =
    match Egraph.restrict g ~keep:keep_mask with
    | None -> None
    | Some (sub, old_of_new) ->
        let new_of_old = Array.make n (-1) in
        Array.iteri (fun nn on -> new_of_old.(on) <- nn) old_of_new;
        let warm_sub =
          match warm with
          | Some s ->
              let sel = Egraph.Solution.selected_nodes g s in
              if sel <> [] && List.for_all (fun i -> new_of_old.(i) >= 0) sel then
                Some
                  (Egraph.Solution.of_choices sub
                     (List.map
                        (fun i ->
                          (sub.Egraph.node_class.(new_of_old.(i)), new_of_old.(i)))
                        sel))
              else None
          | None -> None
        in
        (* the bound cut enters as node *elimination* (safe_drops), not
           as an LP row: an explicit [sum cost_i s_i <= UB] row is sound
           but measurably slows every simplex solve (it is dense), and
           branch-and-bound already prunes on the incumbent — the
           warm-started incumbent gives it the same information free *)
        let enc = Ilp.encode_with_costs sub ~costs:sub.Egraph.costs in
        let warm_pt =
          match warm_sub with
          | Some s when config.profile.Bnb.use_warm_start -> Ilp.warm_start_point sub enc s
          | _ -> None
        in
        let options =
          {
            Bnb.profile = config.profile;
            time_limit = budget;
            node_limit = config.node_limit;
            warm_start = warm_pt;
          }
        in
        let outcome, t =
          Timer.time (fun () ->
              Bnb.solve ?pool ?health enc.Ilp.problem ~integer_vars:enc.Ilp.integer_vars
                options)
        in
        let lifted =
          Option.map
            (fun x ->
              let s_sub = Ilp.decode sub x in
              Egraph.Solution.of_choices g
                (List.map
                   (fun nn ->
                     let on = old_of_new.(nn) in
                     (g.Egraph.node_class.(on), on))
                   (Egraph.Solution.selected_nodes sub s_sub)))
            outcome.Bnb.incumbent
        in
        Some (outcome, lifted, Egraph.num_nodes sub, t)
  in
  let phases = ref [] in
  let push_phase name (o : Bnb.outcome) vars t =
    phases :=
      {
        phase_name = name;
        phase_vars = vars;
        phase_nodes = o.Bnb.nodes;
        phase_obj = o.Bnb.objective;
        phase_bound = o.Bnb.best_bound;
        phase_proved = o.Bnb.proved_optimal;
        phase_time = t;
      }
      :: !phases
  in
  let heuristic_fixes = !dropped_by_fixing > 0 in
  let proved = ref false in
  let final_bound = ref neg_infinity in
  let remaining () =
    let rem = Timer.remaining deadline in
    Float.max 1e-3 (if Float.is_finite rem then rem else config.time_limit)
  in
  (* ------------------------------------------------------------------
     Stage 2: the heuristically-pruned solve. Only worth a separate
     phase when fixing actually removed something; its job is a strong
     incumbent fast, not a proof (its "optimal" is optimal for the
     pruned space only). *)
  if heuristic_fixes then begin
    let budget = if config.verify then remaining () /. 2.0 else remaining () in
    match solve_on ~keep_mask:keep ~budget ~warm:seed_incumbent with
    | None ->
        record Health.Degraded
          "heuristic fixing emptied the root class; skipping the pruned phase"
    | Some (o, lifted, vars, t) ->
        push_phase "pruned" o vars t;
        consider lifted;
        if not config.verify then begin
          (* without the verification solve the pruned bound is only a
             bound for the pruned space; never claim a proof from it *)
          if o.Bnb.proved_optimal then
            record Health.Degraded
              "pruned phase proved its shrunken problem; full-problem proof skipped (verify=false)"
        end
  end;
  (* ------------------------------------------------------------------
     Stage 3: the proving solve on the full problem, reduced only by the
     safe bound-cut eliminations (recomputed against the best incumbent
     so far) and warm-started from it. Its bound and proof are valid for
     the original problem. *)
  if config.verify || not heuristic_fixes then begin
    let ub = !best_cost in
    let keep_safe = Array.make n true in
    let dropped = ref 0 in
    safe_drops ub dropped keep_safe;
    if !dropped > !dropped_by_bound then dropped_by_bound := !dropped;
    match solve_on ~keep_mask:keep_safe ~budget:(remaining ()) ~warm:!best with
    | None -> record Health.Degraded "safe reduction emptied the root class (unexpected)"
    | Some (o, lifted, vars, t) ->
        push_phase (if heuristic_fixes then "verify" else "full") o vars t;
        consider lifted;
        if o.Bnb.proved_optimal then proved := true;
        if o.Bnb.best_bound > !final_bound then final_bound := o.Bnb.best_bound
  end;
  let time_s = Timer.elapsed deadline in
  let gap =
    if !proved then 0.0
    else if Float.is_finite !best_cost && !final_bound > neg_infinity then
      Float.max 0.0 ((!best_cost -. !final_bound) /. Float.max 1.0 (Float.abs !best_cost))
    else infinity
  in
  let phases = List.rev !phases in
  let notes =
    [
      ("fixed_classes", string_of_int !fixed_classes);
      ("dropped_fix", string_of_int !dropped_by_fixing);
      ("dropped_bound", string_of_int !dropped_by_bound);
      ("nodes", string_of_int (List.fold_left (fun a p -> a + p.phase_nodes) 0 phases));
      ("bound", Printf.sprintf "%.6g" !final_bound);
      ("gap", Printf.sprintf "%.6g" gap);
      ("phases", String.concat "+" (List.map (fun p -> p.phase_name) phases));
    ]
  in
  let result =
    Extractor.make ~proved_optimal:!proved
      ~trace:(List.rev !trace_acc)
      ~notes ~method_name:"hybrid" ~time_s g !best
  in
  {
    result;
    fixed_classes = !fixed_classes;
    dropped_by_fixing = !dropped_by_fixing;
    dropped_by_bound = !dropped_by_bound;
    phases;
    bound = !final_bound;
    gap;
  }
