(** Cycle pruning, the TENSAT preprocessing strategy.

    §2 of the paper: "Tensat prunes e-graphs by removing all cycles as a
    preprocessing step, allowing the acyclicity constraint to be ignored
    and significantly reducing the time required by ILP. However, such
    preprocessing reduces the feasible solution space, potentially
    compromising the quality of the final solution."

    This module reproduces that trade-off: {!prune} deletes every e-node
    that participates in a class-graph cycle (iterating, since removals
    can empty classes and cascade), producing an acyclic sub-e-graph on
    which the Eq. (1) encoding needs no big-M ordering rows; {!extract}
    runs the ILP baseline on the pruned graph. Costs of the surviving
    nodes are unchanged, so any solution of the pruned graph is a valid,
    equally-priced solution of the original — possibly missing the true
    optimum, which is exactly the quality loss the paper warns about. *)

type report = {
  removed_nodes : int;
  removed_classes : int;  (** classes emptied (and their dependants) *)
  egraph : Egraph.t option;  (** [None] when pruning destroys derivability of the root *)
  old_node_of_new : int array;
      (** maps the pruned e-graph's node ids back to the original's, so
          solutions lift back to the original e-graph *)
}

val prune : Egraph.t -> report
(** Remove cycle-participating e-nodes until the class graph is acyclic.
    Idempotent on acyclic inputs (removes nothing). *)

val extract :
  ?time_limit:float -> ?profile:Bnb.profile -> Egraph.t -> Extractor.r
(** Prune, then run the ILP extractor on the acyclic remainder and
    validate the solution against the *original* e-graph. Reports method
    name "ilp-pruned". Fails when pruning removes every derivation. *)
