module Iset = Set.Make (Int)

let extract ?(max_passes = 64) g =
  let run () =
    let n = Egraph.num_nodes g and m = Egraph.num_classes g in
    let class_cost = Array.make m infinity in
    let class_set = Array.make m Iset.empty in
    let best_node = Array.make m (-1) in
    let changed = ref true in
    let passes = ref 0 in
    while !changed && !passes < max_passes do
      changed := false;
      incr passes;
      for i = 0 to n - 1 do
        let kids = g.Egraph.children.(i) in
        if Array.for_all (fun c -> Float.is_finite class_cost.(c)) kids then begin
          let set =
            Array.fold_left (fun acc c -> Iset.union acc class_set.(c)) (Iset.singleton i) kids
          in
          let cost = Iset.fold (fun j acc -> acc +. g.Egraph.costs.(j)) set 0.0 in
          let c = g.Egraph.node_class.(i) in
          if cost < class_cost.(c) -. 1e-12 then begin
            class_cost.(c) <- cost;
            class_set.(c) <- set;
            best_node.(c) <- i;
            changed := true
          end
        end
      done
    done;
    if best_node.(g.Egraph.root) < 0 then None
    else begin
      let pick = Array.map (fun b -> if b >= 0 then b else 0) best_node in
      let s = Egraph.Solution.of_node_choice g pick in
      if Egraph.Solution.is_valid g s then Some s else None
    end
  in
  let solution, time_s = Timer.time run in
  Extractor.make ~method_name:"heuristic+" ~time_s g solution
