let random_costs rng g =
  Array.init (Egraph.num_nodes g) (fun _ -> Rng.float rng 1.0 +. 1e-3)

let solution rng g =
  let r = Greedy.extract_with_costs g ~costs:(random_costs rng g) in
  r.Extractor.solution

let solutions rng g ~count =
  let rec loop k acc =
    if k = 0 then List.rev acc
    else
      match solution rng g with
      | Some s -> loop (k - 1) (s :: acc)
      | None -> List.rev acc
  in
  loop count []

let dense_dataset rng g ~count =
  let sols = solutions rng g ~count in
  Array.of_list (List.map (Egraph.Solution.to_dense g) sols)
