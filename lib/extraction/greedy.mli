(** The egg default heuristic extractor (§2, "Heuristic Methods").

    Bottom-up cost propagation with a queue-based worklist: every
    e-class carries the minimum *tree* cost of any term derivable from
    it; when an e-node's aggregated cost (its own cost plus its child
    classes' costs) improves its class, the class's parents re-enter the
    queue. The resulting selection is always acyclic, but — as the
    paper's Figure 2 illustrates — it ignores common-subexpression
    reuse and can be arbitrarily suboptimal on DAG cost. *)

val class_costs : Egraph.t -> float array * int array
(** Converged per-class tree costs and the argmin e-node of each class
    ([infinity] / -1 for underivable classes). *)

val extract : Egraph.t -> Extractor.r

val extract_with_costs : Egraph.t -> costs:float array -> Extractor.r
(** Greedy under an alternative cost vector (used by the random-walk
    valid-solution sampler). The reported [cost] is still the true
    e-graph linear cost. *)
