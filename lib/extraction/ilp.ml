type encoding = {
  problem : Lp.problem;
  s_offset : int;
  t_offset : int;
  integer_vars : int array;
}

let encode_with_costs ?cost_bound g ~costs =
  let n = Egraph.num_nodes g and m = Egraph.num_classes g in
  let nvars = n + m in
  let t_offset = n in
  let objective = Array.make nvars 0.0 in
  Array.blit costs 0 objective 0 n;
  let upper = Array.make nvars 1.0 in
  let constraints = ref [] in
  let addc c = constraints := c :: !constraints in
  (* (1b) exactly one root e-node *)
  addc
    {
      Lp.coeffs = Array.to_list (Array.map (fun k -> k, 1.0) g.Egraph.class_nodes.(g.Egraph.root));
      rel = Lp.Eq;
      rhs = 1.0;
    };
  (* objective bound cut: sum_i cost_i s_i <= UB. Any solution at least
     as good as the incumbent that produced UB satisfies it, so adding
     the row never cuts off the optimum — it only tightens the LP
     relaxation (the hybrid extractor's e-boost-style cut). *)
  (match cost_bound with
  | Some ub ->
      let coeffs = ref [] in
      for i = 0 to n - 1 do
        if costs.(i) <> 0.0 then coeffs := (i, costs.(i)) :: !coeffs
      done;
      if !coeffs <> [] then addc { Lp.coeffs = !coeffs; rel = Lp.Le; rhs = ub }
  | None -> ());
  (* (1c) completeness: s_i <= sum of child class members *)
  for i = 0 to n - 1 do
    let seen = Hashtbl.create 4 in
    Array.iter
      (fun j ->
        if not (Hashtbl.mem seen j) then begin
          Hashtbl.add seen j ();
          let coeffs =
            (i, 1.0) :: Array.to_list (Array.map (fun k -> k, -1.0) g.Egraph.class_nodes.(j))
          in
          addc { Lp.coeffs; rel = Lp.Le; rhs = 0.0 }
        end)
      g.Egraph.children.(i)
  done;
  (* (1e)-(1f) big-M topological ordering, restricted to intra-SCC edges *)
  let epsilon = 1.0 /. (2.0 *. float_of_int (max 1 m)) in
  let big_a = 2.0 in
  let scc = g.Egraph.scc_of_class in
  let scc_size = Array.make (Array.length g.Egraph.sccs) 0 in
  Array.iteri (fun ci members -> scc_size.(ci) <- Array.length members) g.Egraph.sccs;
  for i = 0 to n - 1 do
    let ci = g.Egraph.node_class.(i) in
    let seen = Hashtbl.create 4 in
    Array.iter
      (fun j ->
        if (not (Hashtbl.mem seen j)) && scc.(j) = scc.(ci) && (scc_size.(scc.(j)) > 1 || j = ci)
        then begin
          Hashtbl.add seen j ();
          if j = ci then
            (* self-dependence: choosing i always closes a cycle *)
            addc { Lp.coeffs = [ (i, 1.0) ]; rel = Lp.Le; rhs = 0.0 }
          else
            (* t_ci - t_j - A*s_i >= eps - A *)
            addc
              {
                Lp.coeffs = [ (t_offset + ci, 1.0); (t_offset + j, -1.0); (i, -.big_a) ];
                rel = Lp.Ge;
                rhs = epsilon -. big_a;
              }
        end)
      g.Egraph.children.(i)
  done;
  {
    problem = { Lp.nvars; objective; constraints = List.rev !constraints; upper };
    s_offset = 0;
    t_offset;
    integer_vars = Array.init n Fun.id;
  }

let encode g = encode_with_costs g ~costs:g.Egraph.costs

let decode g x =
  let choice = ref [] in
  for c = 0 to Egraph.num_classes g - 1 do
    let members = g.Egraph.class_nodes.(c) in
    let chosen = ref (-1) in
    Array.iter (fun k -> if x.(k) > 0.5 then chosen := k) members;
    if !chosen >= 0 then choice := (c, !chosen) :: !choice
  done;
  Egraph.Solution.of_choices g !choice

let warm_start_point g enc s =
  if not (Egraph.Solution.is_valid g s) then None
  else begin
    let nvars = enc.problem.Lp.nvars in
    let x = Array.make nvars 0.5 in
    for i = 0 to Egraph.num_nodes g - 1 do
      x.(i) <- 0.0
    done;
    List.iter (fun i -> x.(i) <- 1.0) (Egraph.Solution.selected_nodes g s);
    (* Topological positions for the selected classes: children first. *)
    let m = Egraph.num_classes g in
    let succ =
      Array.init m (fun c ->
          match s.Egraph.Solution.choice.(c) with
          | Some node -> g.Egraph.children.(node)
          | None -> [||])
    in
    (match Graph_algo.topological_order succ with
    | None -> ()
    | Some order ->
        (* order lists parents before children; assign descending ranks
           so t(parent) > t(child). *)
        let rank = Array.make m 0.0 in
        let total = float_of_int (max 1 m) in
        Array.iteri (fun pos c -> rank.(c) <- (total -. float_of_int pos) /. (total +. 1.0)) order;
        for c = 0 to m - 1 do
          x.(enc.t_offset + c) <- rank.(c)
        done);
    if Lp.check_feasible enc.problem x then Some x else None
  end

(* relative optimality gap of a solve: 0 when proved, infinite when
   either side is unknown *)
let gap_of (outcome : Bnb.outcome) =
  if outcome.Bnb.objective = infinity || outcome.Bnb.best_bound = neg_infinity then infinity
  else
    Float.max 0.0
      ((outcome.Bnb.objective -. outcome.Bnb.best_bound)
      /. Float.max 1.0 (Float.abs outcome.Bnb.objective))

let extract ?(time_limit = 60.0) ?(node_limit = 200_000) ?warm_start ?cost_bound ?pool
    ?health ~profile g =
  Trace.with_span ~cat:"extraction"
    ~attrs:
      (if !Obs.on then
         [
           ("profile", profile.Bnb.profile_name);
           ("classes", string_of_int (Egraph.num_classes g));
         ]
       else [])
    "ilp.extract"
  @@ fun () ->
  let run () =
    let enc = encode_with_costs ?cost_bound g ~costs:g.Egraph.costs in
    let warm =
      match warm_start with
      | Some s when profile.Bnb.use_warm_start -> warm_start_point g enc s
      | Some _ | None -> None
    in
    let options = { Bnb.profile; time_limit; node_limit; warm_start = warm } in
    let outcome = Bnb.solve ?pool ?health enc.problem ~integer_vars:enc.integer_vars options in
    enc, outcome
  in
  let (_, outcome), time_s = Timer.time run in
  let solution = Option.map (decode g) outcome.Bnb.incumbent in
  let notes =
    [
      "nodes", string_of_int outcome.Bnb.nodes;
      "bound", Printf.sprintf "%.6g" outcome.Bnb.best_bound;
      "gap", Printf.sprintf "%.6g" (gap_of outcome);
    ]
  in
  Extractor.make
    ~proved_optimal:outcome.Bnb.proved_optimal
    ~trace:outcome.Bnb.trace ~notes
    ~method_name:("ilp-" ^ profile.Bnb.profile_name)
    ~time_s g solution
