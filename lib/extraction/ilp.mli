(** The ILP formulation of e-graph extraction (Eq. 1 of the paper) and
    the branch-and-bound-backed extractor built on it.

    Variables: a binary s_i per e-node and a continuous t_j ∈ [0,1] per
    e-class (topological position). Constraints: exactly one root
    e-node (1b); a selected e-node forces a selection in each child
    e-class (1c); and the big-M ordering constraints (1e)-(1f) that
    forbid cycles. As an optimisation (also used by the paper's SCC
    trick in §4.3), ordering constraints are only emitted for edges
    inside a non-trivial strongly connected component — cross-SCC edges
    can never participate in a cycle. *)

type encoding = {
  problem : Lp.problem;
  s_offset : int;  (** variable index of s_0 (always 0) *)
  t_offset : int;  (** variable index of t_0 *)
  integer_vars : int array;
}

val encode : Egraph.t -> encoding

val encode_with_costs : ?cost_bound:float -> Egraph.t -> costs:float array -> encoding
(** [cost_bound] adds the objective bound cut [sum_i costs(i) s_i <= ub]
    — safe for any [ub] at least the cost of one known solution, since
    the optimum satisfies it too; it only tightens the LP relaxation. *)

val gap_of : Bnb.outcome -> float
(** Relative optimality gap [(objective - best_bound) / max 1 |objective|];
    0 when proved, [infinity] when no incumbent or no finite bound. *)

val decode : Egraph.t -> float array -> Egraph.Solution.s
(** Read the s-variables of a (near-)integral point back into a
    selection. *)

val warm_start_point : Egraph.t -> encoding -> Egraph.Solution.s -> float array option
(** Lift a valid extraction into a feasible (s, t) assignment: t follows
    a topological order of the selected classes. Returns [None] if the
    solution is invalid. *)

val extract :
  ?time_limit:float ->
  ?node_limit:int ->
  ?warm_start:Egraph.Solution.s ->
  ?cost_bound:float ->
  ?pool:Pool.t ->
  ?health:Health.log ->
  profile:Bnb.profile ->
  Egraph.t ->
  Extractor.r
(** Full extraction pipeline: encode (with the bound cut when
    [cost_bound] is given), solve under the given solver profile and
    time budget, decode, validate. The anytime trace carries the
    solver's incumbent improvements (Figure 4); notes report nodes,
    bound and the relative gap. [pool]/[health] are forwarded to
    {!Bnb.solve}. *)
