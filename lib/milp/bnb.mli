(** Mixed-integer linear programming by LP-based branch-and-bound.

    The reproduction's stand-in for the CPLEX / SCIP / CBC solvers of the
    paper's evaluation (§5.1). Binary variables only (which is all the
    extraction encoding of Eq. (1) needs). Features: best-bound or
    depth-first search, most-/first-fractional branching, LP rounding
    heuristic, warm-started incumbents, hard time limits, and an anytime
    incumbent trace (for the Figure 4 comparison).

    The three bundled {!profile}s differ in search strategy and heuristic
    effort, mirroring the commercial-vs-open-source quality split the
    paper observes; see DESIGN.md for the substitution argument.

    Node exploration is wave-parallel: each iteration pops a fixed-width
    wave of frontier nodes (in a strict total order — bound or depth,
    with a push-sequence tie-break) and LP-solves them concurrently on a
    {!Pool}; incumbent updates and branching are then applied
    sequentially in wave order. Because the wave width never depends on
    the pool size and {!Pool.run_array} joins in input order, the
    explored node sequence — and with it the incumbent, bound, node
    count and trace costs — is bit-identical at any [--jobs]. *)

type branch_rule = Most_fractional | First_fractional
type search_order = Best_bound | Depth_first

type profile = {
  profile_name : string;
  branch_rule : branch_rule;
  search : search_order;
  rounding_every : int option;  (** run the rounding heuristic every k nodes *)
  use_warm_start : bool;
}

val cplex_like : profile
(** Best-bound search, most-fractional branching, rounding at every
    node, accepts warm starts — the strongest configuration. *)

val scip_like : profile
(** Best-bound search, most-fractional branching, occasional rounding,
    no warm start. *)

val cbc_like : profile
(** Depth-first search, first-fractional branching, no rounding
    heuristic — the weakest configuration. *)

type options = {
  profile : profile;
  time_limit : float;  (** seconds; <= 0 means unlimited *)
  node_limit : int;
  warm_start : float array option;  (** a feasible point to seed the incumbent *)
}

val default_options : profile -> options

type outcome = {
  incumbent : float array option;
  objective : float;  (** [infinity] when no feasible point was found *)
  best_bound : float;
      (** proven lower bound on the optimum: the weakest open-node bound
          at exit (finite once the root LP has been solved, whatever the
          search order) *)
  proved_optimal : bool;
      (** the frontier was exhausted, or the incumbent–bound gap closed
          to within {!tolerance} of the incumbent *)
  nodes : int;
  solve_time : float;
  trace : (float * float) list;  (** (seconds-since-start, incumbent objective) improvements *)
}

val rel_tol : float
(** The shared relative acceptance/pruning epsilon (1e-9). *)

val tolerance : float -> float
(** [tolerance v] = [rel_tol *. Float.max 1.0 (Float.abs v)] — the
    absolute slack used when comparing against a value of magnitude
    [v]. One constant serves incumbent acceptance, node pruning and the
    [proved_optimal] gap test, so they cannot disagree at any cost
    scale. *)

val solve :
  ?pool:Pool.t -> ?health:Health.log -> Lp.problem -> integer_vars:int array -> options -> outcome
(** [pool] (default {!Pool.get}) runs each wave's LP relaxations
    concurrently; results are identical at any pool size. A warm start
    that fails feasibility or integrality validation is ignored and
    recorded on [health] as a [Warm_start_rejected] event.
    @raise Invalid_argument if an integer variable's bounds are not
    within [0, 1] (binaries only). *)
