(** Mixed-integer linear programming by LP-based branch-and-bound.

    The reproduction's stand-in for the CPLEX / SCIP / CBC solvers of the
    paper's evaluation (§5.1). Binary variables only (which is all the
    extraction encoding of Eq. (1) needs). Features: best-bound or
    depth-first search, most-/first-fractional branching, LP rounding
    heuristic, warm-started incumbents, hard time limits, and an anytime
    incumbent trace (for the Figure 4 comparison).

    The three bundled {!profile}s differ in search strategy and heuristic
    effort, mirroring the commercial-vs-open-source quality split the
    paper observes; see DESIGN.md for the substitution argument. *)

type branch_rule = Most_fractional | First_fractional
type search_order = Best_bound | Depth_first

type profile = {
  profile_name : string;
  branch_rule : branch_rule;
  search : search_order;
  rounding_every : int option;  (** run the rounding heuristic every k nodes *)
  use_warm_start : bool;
}

val cplex_like : profile
(** Best-bound search, most-fractional branching, rounding at every
    node, accepts warm starts — the strongest configuration. *)

val scip_like : profile
(** Best-bound search, most-fractional branching, occasional rounding,
    no warm start. *)

val cbc_like : profile
(** Depth-first search, first-fractional branching, no rounding
    heuristic — the weakest configuration. *)

type options = {
  profile : profile;
  time_limit : float;  (** seconds; <= 0 means unlimited *)
  node_limit : int;
  warm_start : float array option;  (** a feasible point to seed the incumbent *)
}

val default_options : profile -> options

type outcome = {
  incumbent : float array option;
  objective : float;  (** [infinity] when no feasible point was found *)
  best_bound : float;  (** proven lower bound on the optimum *)
  proved_optimal : bool;
  nodes : int;
  solve_time : float;
  trace : (float * float) list;  (** (seconds-since-start, incumbent objective) improvements *)
}

val solve : Lp.problem -> integer_vars:int array -> options -> outcome
(** @raise Invalid_argument if an integer variable's bounds are not
    within [0, 1] (binaries only). *)
