type relation = Le | Ge | Eq

type constr = { coeffs : (int * float) list; rel : relation; rhs : float }

type problem = {
  nvars : int;
  objective : float array;
  constraints : constr list;
  upper : float array;
}

type result =
  | Optimal of { x : float array; obj : float }
  | Infeasible
  | Unbounded
  | Timeout

let eps = 1e-9
let feas_tol = 1e-6

(* Dense-tableau capacity: beyond this the solver would need gigabytes;
   real solvers switch to sparse revised simplex, ours declines (the
   caller sees a Timeout, i.e. "no solution within resources"). *)
let max_tableau_cells = 30_000_000

let eval_objective p x =
  let acc = ref 0.0 in
  for j = 0 to p.nvars - 1 do
    acc := !acc +. (p.objective.(j) *. x.(j))
  done;
  !acc

let check_feasible ?(tol = feas_tol) p x =
  let ok = ref true in
  for j = 0 to p.nvars - 1 do
    if x.(j) < -.tol || x.(j) > p.upper.(j) +. tol then ok := false
  done;
  List.iter
    (fun c ->
      let lhs = List.fold_left (fun acc (j, a) -> acc +. (a *. x.(j))) 0.0 c.coeffs in
      (match c.rel with
      | Le -> if lhs > c.rhs +. tol then ok := false
      | Ge -> if lhs < c.rhs -. tol then ok := false
      | Eq -> if Float.abs (lhs -. c.rhs) > tol then ok := false))
    p.constraints;
  !ok

(* Dense standard-form tableau:
     rows    : one per constraint (upper bounds included as Le rows)
     columns : structural vars | slacks/surpluses | artificials | rhs
   Phase 1 minimises the artificial sum; phase 2 the true objective with
   artificial columns barred from entering. *)
type tableau = {
  m : int;  (* rows *)
  ncols : int;  (* columns excluding rhs *)
  t : float array array;  (* m rows of (ncols + 1) *)
  basis : int array;  (* basic column of each row *)
  art_start : int;  (* first artificial column *)
}

let build_tableau p =
  let bound_rows =
    let acc = ref [] in
    for j = p.nvars - 1 downto 0 do
      if p.upper.(j) < infinity then
        acc := { coeffs = [ (j, 1.0) ]; rel = Le; rhs = p.upper.(j) } :: !acc
    done;
    !acc
  in
  let rows = Array.of_list (p.constraints @ bound_rows) in
  let m = Array.length rows in
  (* Count slack and artificial columns. *)
  let nslack = ref 0 and nart = ref 0 in
  Array.iter
    (fun c ->
      (* After sign normalisation (rhs >= 0): Le gets a slack; Ge gets a
         surplus and an artificial; Eq gets an artificial. *)
      let rel = if c.rhs < 0.0 then (match c.rel with Le -> Ge | Ge -> Le | Eq -> Eq) else c.rel in
      match rel with
      | Le -> incr nslack
      | Ge ->
          incr nslack;
          incr nart
      | Eq -> incr nart)
    rows;
  let ncols = p.nvars + !nslack + !nart in
  let art_start = p.nvars + !nslack in
  let t = Array.make_matrix m (ncols + 1) 0.0 in
  let basis = Array.make m (-1) in
  let next_slack = ref p.nvars and next_art = ref art_start in
  Array.iteri
    (fun i c ->
      let flip = c.rhs < 0.0 in
      let sign = if flip then -1.0 else 1.0 in
      List.iter (fun (j, a) -> t.(i).(j) <- t.(i).(j) +. (sign *. a)) c.coeffs;
      t.(i).(ncols) <- sign *. c.rhs;
      let rel = if flip then (match c.rel with Le -> Ge | Ge -> Le | Eq -> Eq) else c.rel in
      (match rel with
      | Le ->
          t.(i).(!next_slack) <- 1.0;
          basis.(i) <- !next_slack;
          incr next_slack
      | Ge ->
          t.(i).(!next_slack) <- -1.0;
          incr next_slack;
          t.(i).(!next_art) <- 1.0;
          basis.(i) <- !next_art;
          incr next_art
      | Eq ->
          t.(i).(!next_art) <- 1.0;
          basis.(i) <- !next_art;
          incr next_art))
    rows;
  { m; ncols; t; basis; art_start }

let pivot tb row col =
  if !Obs.on then Metrics.incr "lp.pivots";
  let t = tb.t in
  let prow = t.(row) in
  let pv = prow.(col) in
  let inv = 1.0 /. pv in
  for j = 0 to tb.ncols do
    prow.(j) <- prow.(j) *. inv
  done;
  for i = 0 to tb.m - 1 do
    if i <> row then begin
      let f = t.(i).(col) in
      if Float.abs f > 0.0 then begin
        let r = t.(i) in
        for j = 0 to tb.ncols do
          r.(j) <- r.(j) -. (f *. prow.(j))
        done;
        r.(col) <- 0.0
      end
    end
  done;
  prow.(col) <- 1.0;
  tb.basis.(row) <- col

type phase_result = Popt | Punbounded | Ptimeout

(* Minimise cᵀx over the current tableau. [allowed j] bars columns from
   entering (artificials in phase 2). *)
let run_phase ?(deadline = Timer.no_deadline) tb cost ~allowed =
  let reduced = Array.make tb.ncols 0.0 in
  let iter_cap = (50 * (tb.m + tb.ncols)) + 1000 in
  let rec loop iter bland =
    if Timer.poll deadline iter then Ptimeout
    else if iter > iter_cap then Ptimeout
    else begin
      (* reduced costs: c_j - c_B B^{-1} A_j, read off the tableau *)
      Array.blit cost 0 reduced 0 tb.ncols;
      for i = 0 to tb.m - 1 do
        let cb = cost.(tb.basis.(i)) in
        if cb <> 0.0 then begin
          let row = tb.t.(i) in
          for j = 0 to tb.ncols - 1 do
            reduced.(j) <- reduced.(j) -. (cb *. row.(j))
          done
        end
      done;
      (* entering column *)
      let entering = ref (-1) in
      if bland then begin
        (try
           for j = 0 to tb.ncols - 1 do
             if allowed j && reduced.(j) < -.eps then begin
               entering := j;
               raise Exit
             end
           done
         with Exit -> ())
      end
      else begin
        let best = ref (-.eps) in
        for j = 0 to tb.ncols - 1 do
          if allowed j && reduced.(j) < !best then begin
            best := reduced.(j);
            entering := j
          end
        done
      end;
      if !entering < 0 then Popt
      else begin
        (* ratio test *)
        let e = !entering in
        let leave = ref (-1) in
        let best_ratio = ref infinity in
        for i = 0 to tb.m - 1 do
          let a = tb.t.(i).(e) in
          if a > eps then begin
            let ratio = tb.t.(i).(tb.ncols) /. a in
            if
              ratio < !best_ratio -. eps
              || (ratio < !best_ratio +. eps && !leave >= 0
                 && tb.basis.(i) < tb.basis.(!leave))
            then begin
              best_ratio := ratio;
              leave := i
            end
          end
        done;
        if !leave < 0 then Punbounded
        else begin
          pivot tb !leave e;
          (* switch to Bland's rule if we appear to be stalling *)
          let bland = bland || iter > 5 * (tb.m + tb.ncols) in
          loop (iter + 1) bland
        end
      end
    end
  in
  loop 0 false

let tableau_cells p =
  let bound_rows = Array.fold_left (fun acc u -> if u < infinity then acc + 1 else acc) 0 p.upper in
  let rows = List.length p.constraints + bound_rows in
  (* columns <= nvars + one slack + one artificial per row *)
  rows * (p.nvars + (2 * rows) + 1)

let solve ?(deadline = Timer.no_deadline) p =
  if !Obs.on then Metrics.incr "lp.solves";
  if p.nvars = 0 then Optimal { x = [||]; obj = 0.0 }
  else if tableau_cells p > max_tableau_cells then Timeout
  else if Fault_plan.stall_solver deadline then
    (* injected stall: the solver makes no progress until its deadline
       passes, exactly like a pathological simplex instance *)
    Timeout
  else begin
    let tb = build_tableau p in
    let has_artificials = tb.art_start < tb.ncols in
    let phase1_outcome =
      if not has_artificials then Popt
      else begin
        let cost1 = Array.make tb.ncols 0.0 in
        for j = tb.art_start to tb.ncols - 1 do
          cost1.(j) <- 1.0
        done;
        run_phase ~deadline tb cost1 ~allowed:(fun _ -> true)
      end
    in
    match phase1_outcome with
    | Ptimeout -> Timeout
    | Punbounded -> Infeasible (* phase 1 is bounded below by 0; treat as numerical failure *)
    | Popt ->
        let art_value = ref 0.0 in
        if has_artificials then
          for i = 0 to tb.m - 1 do
            if tb.basis.(i) >= tb.art_start then art_value := !art_value +. tb.t.(i).(tb.ncols)
          done;
        if !art_value > feas_tol then Infeasible
        else begin
          (* Drive remaining (zero-valued) artificials out of the basis. *)
          for i = 0 to tb.m - 1 do
            if tb.basis.(i) >= tb.art_start then begin
              let found = ref (-1) in
              (try
                 for j = 0 to tb.art_start - 1 do
                   if Float.abs tb.t.(i).(j) > eps then begin
                     found := j;
                     raise Exit
                   end
                 done
               with Exit -> ());
              if !found >= 0 then pivot tb i !found
              (* else: redundant row; leave the artificial basic at 0 *)
            end
          done;
          let cost2 = Array.make tb.ncols 0.0 in
          Array.blit p.objective 0 cost2 0 p.nvars;
          let allowed j = j < tb.art_start in
          match run_phase ~deadline tb cost2 ~allowed with
          | Ptimeout -> Timeout
          | Punbounded -> Unbounded
          | Popt ->
              let x = Array.make p.nvars 0.0 in
              for i = 0 to tb.m - 1 do
                let b = tb.basis.(i) in
                if b < p.nvars then x.(b) <- tb.t.(i).(tb.ncols)
              done;
              (* clean tiny negatives produced by roundoff *)
              for j = 0 to p.nvars - 1 do
                if x.(j) < 0.0 && x.(j) > -.feas_tol then x.(j) <- 0.0
              done;
              Optimal { x; obj = eval_objective p x }
        end
  end
