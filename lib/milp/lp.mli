(** Linear programming by dense two-phase primal simplex.

    Substrate for the ILP e-graph extraction baselines (Eq. 1 of the
    paper). Minimises cᵀx subject to linear constraints and box bounds
    [0 ≤ x ≤ u]. Uses Dantzig pricing with a switch to Bland's rule
    after a stall threshold to guarantee termination, and supports an
    external deadline so branch-and-bound can honour the paper's
    15-minute-style time limits. *)

type relation = Le | Ge | Eq

type constr = {
  coeffs : (int * float) list;  (** sparse (variable, coefficient) *)
  rel : relation;
  rhs : float;
}

type problem = {
  nvars : int;
  objective : float array;  (** minimisation coefficients, length nvars *)
  constraints : constr list;
  upper : float array;  (** per-variable upper bound, [infinity] = free above; lower bound is 0 *)
}

type result =
  | Optimal of { x : float array; obj : float }
  | Infeasible
  | Unbounded
  | Timeout
      (** deadline expired, the iteration cap was hit, or the dense
          tableau would exceed the solver's memory capacity *)

val solve : ?deadline:Timer.deadline -> problem -> result

val check_feasible : ?tol:float -> problem -> float array -> bool
(** Constraint + bound satisfaction check for a candidate point —
    used by rounding heuristics and by the test-suite. *)

val eval_objective : problem -> float array -> float
