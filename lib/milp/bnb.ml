type branch_rule = Most_fractional | First_fractional
type search_order = Best_bound | Depth_first

type profile = {
  profile_name : string;
  branch_rule : branch_rule;
  search : search_order;
  rounding_every : int option;
  use_warm_start : bool;
}

let cplex_like =
  {
    profile_name = "cplex-like";
    branch_rule = Most_fractional;
    search = Best_bound;
    rounding_every = Some 1;
    use_warm_start = true;
  }

let scip_like =
  {
    profile_name = "scip-like";
    branch_rule = Most_fractional;
    search = Best_bound;
    rounding_every = Some 20;
    use_warm_start = false;
  }

let cbc_like =
  {
    profile_name = "cbc-like";
    branch_rule = First_fractional;
    search = Depth_first;
    rounding_every = None;
    use_warm_start = false;
  }

type options = {
  profile : profile;
  time_limit : float;
  node_limit : int;
  warm_start : float array option;
}

let default_options profile =
  { profile; time_limit = 60.0; node_limit = 200_000; warm_start = None }

type outcome = {
  incumbent : float array option;
  objective : float;
  best_bound : float;
  proved_optimal : bool;
  nodes : int;
  solve_time : float;
  trace : (float * float) list;
}

let int_tol = 1e-6

(* The one acceptance/pruning epsilon, scaled to the magnitude of the
   value it guards. An absolute 1e-9 is simultaneously too tight for
   large-cost instances (MCM datapaths with costs ~1e6+, where LP
   round-off alone exceeds it and equal-bound nodes never prune) and
   meaninglessly loose for unit-cost graphs. *)
let rel_tol = 1e-9
let tolerance v = rel_tol *. Float.max 1.0 (Float.abs v)

(* How many frontier nodes each exploration wave pops and LP-solves on
   the domain pool. Fixed — never derived from the pool size — so the
   explored node sequence, and therefore the incumbent, the bound and
   the node count, are bit-identical at any [--jobs]. *)
let wave_width = 8

(* A node fixes a subset of binaries: value 0 is encoded by dropping the
   upper bound to 0; value 1 by an extra equality row. [seq] is a
   monotonic push counter giving the frontier a strict total order. *)
type bnode = { fixes : (int * int) list; bound : float; depth : int; seq : int }

let is_integral x j = Float.abs (x.(j) -. Float.round x.(j)) <= int_tol

let apply_fixes (p : Lp.problem) fixes =
  let upper = Array.copy p.upper in
  let extra = ref [] in
  List.iter
    (fun (j, v) ->
      if v = 0 then upper.(j) <- 0.0
      else extra := { Lp.coeffs = [ (j, 1.0) ]; rel = Lp.Eq; rhs = 1.0 } :: !extra)
    fixes;
  { p with Lp.upper; constraints = !extra @ p.Lp.constraints }

let solve ?pool ?health (p : Lp.problem) ~integer_vars options =
  Array.iter
    (fun j ->
      if p.Lp.upper.(j) > 1.0 +. int_tol then
        invalid_arg "Bnb.solve: integer variables must be binary (upper bound 1)")
    integer_vars;
  Trace.with_span ~cat:"milp"
    ~attrs:
      (if !Obs.on then
         [ ("profile", options.profile.profile_name); ("nvars", string_of_int p.Lp.nvars) ]
       else [])
    "bnb.solve"
  @@ fun () ->
  let deadline = Timer.deadline_after options.time_limit in
  let incumbent = ref None in
  let incumbent_obj = ref infinity in
  let trace = ref [] in
  (* [improves v] decides both incumbent acceptance and node pruning
     (prune when the node's bound does NOT improve), so the two can
     never disagree about which side of the incumbent a value is on. *)
  let improves v = !incumbent = None || v < !incumbent_obj -. tolerance !incumbent_obj in
  let accept x obj =
    if improves obj then begin
      incumbent := Some (Array.copy x);
      incumbent_obj := obj;
      trace := (Timer.elapsed deadline, obj) :: !trace;
      if !Obs.on then Metrics.observe "bnb.incumbent" obj
    end
  in
  (match options.warm_start with
  | Some x when options.profile.use_warm_start ->
      (* an infeasible or fractional warm start must not seed the
         incumbent: pruning against its objective would cut off the
         true optimum. Reject it loudly instead of silently. *)
      let feasible = Lp.check_feasible p x in
      let integral = Array.for_all (fun j -> is_integral x j) integer_vars in
      if feasible && integral then accept x (Lp.eval_objective p x)
      else begin
        let why =
          if not feasible then "violates the LP constraints"
          else "is fractional on integer variables"
        in
        (match health with
        | Some log ->
            Health.record log ~member:"bnb" Health.Warm_start_rejected
              (Printf.sprintf "warm start %s; solving cold" why)
        | None -> ());
        if !Obs.on then Metrics.incr "bnb.warm_start_rejected"
      end
  | Some _ | None -> ());
  let try_rounding x =
    let rounded = Array.copy x in
    Array.iter (fun j -> rounded.(j) <- Float.round rounded.(j)) integer_vars;
    if Lp.check_feasible p rounded then accept rounded (Lp.eval_objective p rounded)
  in
  let pick_branch x =
    match options.profile.branch_rule with
    | First_fractional ->
        let found = ref (-1) in
        (try
           Array.iter
             (fun j ->
               if not (is_integral x j) then begin
                 found := j;
                 raise Exit
               end)
             integer_vars
         with Exit -> ());
        !found
    | Most_fractional ->
        let best = ref (-1) and best_frac = ref int_tol in
        Array.iter
          (fun j ->
            let f = Float.abs (x.(j) -. Float.round x.(j)) in
            if f > !best_frac then begin
              best_frac := f;
              best := j
            end)
          integer_vars;
        !best
  in
  (* Frontier: a heap for best-bound, a LIFO-ish stack for DFS ordered
     on depth. The [seq] tie-break makes the pop order a strict total
     order, so exploration is deterministic however the heap happens to
     arrange equal keys. *)
  let leq =
    match options.profile.search with
    | Best_bound ->
        fun a b -> a.bound < b.bound || (a.bound = b.bound && a.seq <= b.seq)
    | Depth_first -> fun a b -> a.depth > b.depth || (a.depth = b.depth && a.seq >= b.seq)
  in
  let frontier = Heap.create ~leq in
  let seq = ref 0 in
  let push ~fixes ~bound ~depth =
    incr seq;
    Heap.push frontier { fixes; bound; depth; seq = !seq }
  in
  push ~fixes:[] ~bound:neg_infinity ~depth:0;
  let nodes = ref 0 in
  let exhausted = ref false in
  let hit_limit = ref false in
  let frontier_min_bound () =
    (* the proven global lower bound is the weakest open-node bound.
       Scan the whole frontier: the DFS heap is ordered on depth, not
       bound, so its top says nothing about the weakest bound (the old
       neg_infinity answer made every timed-out cbc-like gap useless). *)
    if Heap.is_empty frontier then !incumbent_obj
    else Heap.fold (fun acc n -> Float.min acc n.bound) infinity frontier
  in
  let pool = match pool with Some p -> p | None -> Pool.get () in
  let wave = Vec.create () in
  let rec loop () =
    if Heap.is_empty frontier then exhausted := true
    else if Timer.poll deadline !nodes || !nodes >= options.node_limit then hit_limit := true
    else begin
      (* Assemble one wave: up to [wave_width] not-yet-pruned nodes, in
         strict frontier order, capped by the remaining node budget. *)
      Vec.clear wave;
      let width = min wave_width (options.node_limit - !nodes) in
      while Vec.length wave < width && not (Heap.is_empty frontier) do
        let node = Heap.pop frontier in
        if improves node.bound then Vec.push wave node
      done;
      if Vec.is_empty wave then loop ()
      else begin
        (* LP-solve the wave concurrently. Each task is a pure function
           of its node (fresh sub-problem, no shared state), and
           [Pool.run_array] joins in input order, so the results arrive
           exactly as a sequential left-to-right solve would produce
           them whatever the pool size. *)
        let results =
          Pool.run_array pool
            (Array.map
               (fun node () -> Lp.solve ~deadline (apply_fixes p node.fixes))
               (Vec.to_array wave))
        in
        (* Incumbent updates, rounding and branching stay sequential and
           in wave order: the only state they touch is deterministic. *)
        Array.iteri
          (fun i res ->
            let node = Vec.get wave i in
            incr nodes;
            if !Obs.on then Metrics.incr "bnb.nodes_explored";
            match res with
            | Lp.Timeout ->
                (* the node's subtree is unexplored: put it back so the
                   reported best_bound still accounts for it *)
                hit_limit := true;
                push ~fixes:node.fixes ~bound:node.bound ~depth:node.depth
            | Lp.Infeasible | Lp.Unbounded -> ()
            | Lp.Optimal { x; obj } ->
                if improves obj then begin
                  let j = pick_branch x in
                  if j < 0 then accept x obj
                  else begin
                    (match options.profile.rounding_every with
                    | Some k when !nodes mod k = 0 -> try_rounding x
                    | Some _ | None -> ());
                    push ~fixes:((j, 0) :: node.fixes) ~bound:obj ~depth:(node.depth + 1);
                    push ~fixes:((j, 1) :: node.fixes) ~bound:obj ~depth:(node.depth + 1)
                  end
                end)
          results;
        if not !hit_limit then loop ()
      end
    end
  in
  loop ();
  let best_bound =
    if !exhausted then !incumbent_obj else Float.min (frontier_min_bound ()) !incumbent_obj
  in
  let proved_optimal =
    !incumbent <> None
    && (!exhausted || !incumbent_obj -. best_bound <= tolerance !incumbent_obj)
  in
  {
    incumbent = !incumbent;
    objective = !incumbent_obj;
    best_bound;
    proved_optimal;
    nodes = !nodes;
    solve_time = Timer.elapsed deadline;
    trace = List.rev !trace;
  }
