type branch_rule = Most_fractional | First_fractional
type search_order = Best_bound | Depth_first

type profile = {
  profile_name : string;
  branch_rule : branch_rule;
  search : search_order;
  rounding_every : int option;
  use_warm_start : bool;
}

let cplex_like =
  {
    profile_name = "cplex-like";
    branch_rule = Most_fractional;
    search = Best_bound;
    rounding_every = Some 1;
    use_warm_start = true;
  }

let scip_like =
  {
    profile_name = "scip-like";
    branch_rule = Most_fractional;
    search = Best_bound;
    rounding_every = Some 20;
    use_warm_start = false;
  }

let cbc_like =
  {
    profile_name = "cbc-like";
    branch_rule = First_fractional;
    search = Depth_first;
    rounding_every = None;
    use_warm_start = false;
  }

type options = {
  profile : profile;
  time_limit : float;
  node_limit : int;
  warm_start : float array option;
}

let default_options profile =
  { profile; time_limit = 60.0; node_limit = 200_000; warm_start = None }

type outcome = {
  incumbent : float array option;
  objective : float;
  best_bound : float;
  proved_optimal : bool;
  nodes : int;
  solve_time : float;
  trace : (float * float) list;
}

let int_tol = 1e-6

(* A node fixes a subset of binaries: value 0 is encoded by dropping the
   upper bound to 0; value 1 by an extra equality row. *)
type bnode = { fixes : (int * int) list; bound : float; depth : int }

let is_integral x j = Float.abs (x.(j) -. Float.round x.(j)) <= int_tol

let apply_fixes (p : Lp.problem) fixes =
  let upper = Array.copy p.upper in
  let extra = ref [] in
  List.iter
    (fun (j, v) ->
      if v = 0 then upper.(j) <- 0.0
      else extra := { Lp.coeffs = [ (j, 1.0) ]; rel = Lp.Eq; rhs = 1.0 } :: !extra)
    fixes;
  { p with Lp.upper; constraints = !extra @ p.Lp.constraints }

let solve (p : Lp.problem) ~integer_vars options =
  Array.iter
    (fun j ->
      if p.Lp.upper.(j) > 1.0 +. int_tol then
        invalid_arg "Bnb.solve: integer variables must be binary (upper bound 1)")
    integer_vars;
  Trace.with_span ~cat:"milp"
    ~attrs:
      (if !Obs.on then
         [ ("profile", options.profile.profile_name); ("nvars", string_of_int p.Lp.nvars) ]
       else [])
    "bnb.solve"
  @@ fun () ->
  let deadline = Timer.deadline_after options.time_limit in
  let incumbent = ref None in
  let incumbent_obj = ref infinity in
  let trace = ref [] in
  let accept x obj =
    if obj < !incumbent_obj -. 1e-9 then begin
      incumbent := Some (Array.copy x);
      incumbent_obj := obj;
      trace := (Timer.elapsed deadline, obj) :: !trace;
      if !Obs.on then Metrics.observe "bnb.incumbent" obj
    end
  in
  (match options.warm_start with
  | Some x when options.profile.use_warm_start ->
      if Lp.check_feasible p x && Array.for_all (fun j -> is_integral x j) integer_vars then
        accept x (Lp.eval_objective p x)
  | Some _ | None -> ());
  let try_rounding x =
    let rounded = Array.copy x in
    Array.iter (fun j -> rounded.(j) <- Float.round rounded.(j)) integer_vars;
    if Lp.check_feasible p rounded then accept rounded (Lp.eval_objective p rounded)
  in
  let pick_branch x =
    match options.profile.branch_rule with
    | First_fractional ->
        let found = ref (-1) in
        (try
           Array.iter
             (fun j ->
               if not (is_integral x j) then begin
                 found := j;
                 raise Exit
               end)
             integer_vars
         with Exit -> ());
        !found
    | Most_fractional ->
        let best = ref (-1) and best_frac = ref int_tol in
        Array.iter
          (fun j ->
            let f = Float.abs (x.(j) -. Float.round x.(j)) in
            if f > !best_frac then begin
              best_frac := f;
              best := j
            end)
          integer_vars;
        !best
  in
  (* Frontier: a heap for best-bound, used as a LIFO-ish stack for DFS by
     ordering on depth (deepest first). *)
  let leq =
    match options.profile.search with
    | Best_bound -> fun a b -> a.bound <= b.bound
    | Depth_first -> fun a b -> a.depth >= b.depth
  in
  let frontier = Heap.create ~leq in
  Heap.push frontier { fixes = []; bound = neg_infinity; depth = 0 };
  let nodes = ref 0 in
  let exhausted = ref false in
  let hit_limit = ref false in
  let frontier_min_bound () =
    (* For best-bound search the heap top is the global bound; for DFS we
       conservatively report the weakest (smallest) open bound. *)
    match options.profile.search with
    | Best_bound -> (
        match Heap.peek frontier with Some n -> n.bound | None -> !incumbent_obj)
    | Depth_first -> if Heap.is_empty frontier then !incumbent_obj else neg_infinity
  in
  let rec loop () =
    if Heap.is_empty frontier then exhausted := true
    else if Timer.poll deadline !nodes || !nodes >= options.node_limit then hit_limit := true
    else begin
      let node = Heap.pop frontier in
      if node.bound >= !incumbent_obj -. 1e-9 then loop ()
      else begin
        incr nodes;
        if !Obs.on then Metrics.incr "bnb.nodes_explored";
        let sub = apply_fixes p node.fixes in
        (match Lp.solve ~deadline sub with
        | Lp.Timeout -> hit_limit := true
        | Lp.Infeasible -> ()
        | Lp.Unbounded -> ()
        | Lp.Optimal { x; obj } ->
            if obj < !incumbent_obj -. 1e-9 then begin
              let j = pick_branch x in
              if j < 0 then accept x obj
              else begin
                (match options.profile.rounding_every with
                | Some k when !nodes mod k = 0 -> try_rounding x
                | Some _ | None -> ());
                Heap.push frontier { fixes = (j, 0) :: node.fixes; bound = obj; depth = node.depth + 1 };
                Heap.push frontier { fixes = (j, 1) :: node.fixes; bound = obj; depth = node.depth + 1 }
              end
            end);
        if not !hit_limit then loop ()
      end
    end
  in
  loop ();
  let best_bound = if !exhausted then !incumbent_obj else frontier_min_bound () in
  {
    incumbent = !incumbent;
    objective = !incumbent_obj;
    best_bound;
    proved_optimal = !exhausted && !incumbent <> None;
    nodes = !nodes;
    solve_time = Timer.elapsed deadline;
    trace = List.rev !trace;
  }
