(** The tensat dataset: tensor-graph superoptimisation e-graphs (Yang et
    al., [53] in the paper) over the five networks of Table 3 — NASNet-A,
    NASRNN, BERT, VGG and ResNet-50 style models.

    Unlike the hand-constructed datasets, these e-graphs come out of the
    repository's own equality-saturation engine: a seed computation
    graph per network is rewritten with TENSAT-style rules (matmul
    associativity and distributivity-fusion, conv-conv composition, relu
    idempotence, identity introduction — the latter creates the *cyclic*
    e-classes that exercise the acyclicity machinery). Per-operator
    costs model GPU kernel execution times. *)

val rules : Term.rule list

val op_cost : string -> int -> float

val network : string -> Term.t
(** The seed computation graph of a named network.
    @raise Invalid_argument for unknown names. *)

val build : ?node_limit:int -> string -> Egraph.t
(** Saturate the named network and export the e-graph. *)

val instances : (string * (unit -> Egraph.t)) list
(** NASNet-A, NASRNN, BERT, VGG, ResNet-50. *)
