type instance = { inst_name : string; build : unit -> Egraph.t }

type dataset = {
  ds_name : string;
  task : string;
  workloads : string;
  assumption : string;
  adversarial : bool;
  instances : instance list;
}

let mk_instances pairs = List.map (fun (inst_name, build) -> { inst_name; build }) pairs

let diospyros =
  {
    ds_name = "diospyros";
    task = "DSP vectorization";
    workloads = "Linear algebra kernels";
    assumption = "independent";
    adversarial = false;
    instances = mk_instances Diospyros_ds.instances;
  }

let flexc =
  {
    ds_name = "flexc";
    task = "CGRA mapping";
    workloads = "Bzip2, FFmpeg";
    assumption = "correlated";
    adversarial = false;
    instances = mk_instances Flexc_ds.instances;
  }

let impress =
  {
    ds_name = "impress";
    task = "FPGA HLS";
    workloads = "Large integer multiplication";
    assumption = "correlated";
    adversarial = false;
    instances = mk_instances Impress_ds.instances;
  }

let rover =
  {
    ds_name = "rover";
    task = "Datapath";
    workloads = "DSP and graphics kernels";
    assumption = "independent";
    adversarial = false;
    instances = mk_instances Rover_ds.instances;
  }

let tensat =
  {
    ds_name = "tensat";
    task = "Tensor graph";
    workloads = "ResNet-50, BERT";
    assumption = "independent";
    adversarial = false;
    instances = mk_instances Tensat_ds.instances;
  }

let set_cover =
  {
    ds_name = "set";
    task = "NP-hard problem";
    workloads = "Minimum set covering";
    assumption = "independent";
    adversarial = true;
    instances = mk_instances Npc_ds.set_instances;
  }

let maxsat =
  {
    ds_name = "maxsat";
    task = "NP-hard problem";
    workloads = "Maximum satisfiability";
    assumption = "independent";
    adversarial = true;
    instances = mk_instances Npc_ds.maxsat_instances;
  }

let realistic = [ diospyros; flexc; impress; rover; tensat ]
let adversarial = [ set_cover; maxsat ]
let all = realistic @ adversarial

let find name = List.find (fun d -> d.ds_name = name) all

let find_instance name =
  let rec search = function
    | [] -> raise Not_found
    | d :: rest -> (
        match List.find_opt (fun i -> i.inst_name = name) d.instances with
        | Some i -> i
        | None -> search rest)
  in
  search all
