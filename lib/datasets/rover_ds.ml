let bitwidth v =
  let rec loop v acc = if v = 0 then acc else loop (v lsr 1) (acc + 1) in
  max 1 (loop v 0)

let adder_cost v = 8.0 +. float_of_int (bitwidth v)
let shift_cost = 0.5
let reg_cost = 1.0

(* Multiplier-block builder: memoised e-class per (input, constant)
   fundamental, with alternative shift/add/sub decompositions. *)
type mcm_ctx = {
  b : Egraph.Builder.b;
  rng : Rng.t;
  memo : (int * int, int) Hashtbl.t;  (* (input class, value) -> class *)
}

let rec class_of_value ctx ~input v =
  assert (v >= 1);
  match Hashtbl.find_opt ctx.memo (input, v) with
  | Some c -> c
  | None ->
      let c = Egraph.Builder.add_class ctx.b in
      Hashtbl.add ctx.memo (input, v) c;
      if v = 1 then
        (* the (possibly shifted/registered) input itself: a wire *)
        ignore (Egraph.Builder.add_node ctx.b ~cls:c ~op:"wire" ~cost:0.0 ~children:[ input ])
      else if v land 1 = 0 then begin
        (* even: shift of the odd part; k chosen maximal *)
        let rec odd_part v k = if v land 1 = 0 then odd_part (v lsr 1) (k + 1) else v, k in
        let u, k = odd_part v 0 in
        let cu = class_of_value ctx ~input u in
        ignore
          (Egraph.Builder.add_node ctx.b ~cls:c
             ~op:(Printf.sprintf "shl%d" k)
             ~cost:shift_cost ~children:[ cu ])
      end
      else begin
        (* odd > 1: a few additive/subtractive decompositions *)
        let add_pair a bb =
          let ca = class_of_value ctx ~input a in
          let cb = class_of_value ctx ~input bb in
          ignore
            (Egraph.Builder.add_node ctx.b ~cls:c ~op:"add" ~cost:(adder_cost v)
               ~children:[ ca; cb ])
        in
        (* v = (v-1) + 1 : always available *)
        add_pair (v - 1) 1;
        (* v = 2^k + (v - 2^k) with the largest power of two below v *)
        let p = 1 lsl (bitwidth v - 1) in
        if p < v && v - p <> 1 then add_pair p (v - p);
        (* v = (v+1) - 1 : subtractor via the next even value *)
        let cu = class_of_value ctx ~input (v + 1) in
        let c1 = class_of_value ctx ~input 1 in
        ignore
          (Egraph.Builder.add_node ctx.b ~cls:c ~op:"sub" ~cost:(adder_cost v)
             ~children:[ cu; c1 ]);
        (* occasionally a random balanced split for diversity *)
        if v > 5 && Rng.bool ctx.rng then begin
          let a = 2 * (1 + Rng.int ctx.rng ((v / 2) - 1)) in
          let bb = v - a in
          if bb >= 1 && a <> v - 1 then add_pair a bb
        end
      end;
      c

(* Summation ranges [i, j) with alternative association splits; leaves
   come from [leaf i]. *)
let rec sum_range ctx memo leaf i j =
  match Hashtbl.find_opt memo (i, j) with
  | Some c -> c
  | None ->
      if j - i = 1 then begin
        let c = leaf i in
        Hashtbl.add memo (i, j) c;
        c
      end
      else begin
        let c = Egraph.Builder.add_class ctx.b in
        Hashtbl.add memo (i, j) c;
        let splits =
          if j - i = 2 then [ i + 1 ]
          else
            List.sort_uniq compare [ i + 1; (i + j) / 2; j - 1 ]
        in
        List.iter
          (fun k ->
            let ca = sum_range ctx memo leaf i k in
            let cb = sum_range ctx memo leaf k j in
            ignore
              (Egraph.Builder.add_node ctx.b ~cls:c ~op:"add"
                 ~cost:(adder_cost (16 * (j - i)))
                 ~children:[ ca; cb ]))
          splits;
        c
      end

let fresh_ctx ~name ~seed =
  let b = Egraph.Builder.create ~name () in
  { b; rng = Rng.create seed; memo = Hashtbl.create 64 }

let input_class ctx =
  let c = Egraph.Builder.add_class ctx.b in
  ignore (Egraph.Builder.add_node ctx.b ~cls:c ~op:"x" ~cost:0.0 ~children:[]);
  c

let random_odd_constants rng count limit =
  let seen = Hashtbl.create count in
  let acc = ref [] in
  while List.length !acc < count do
    let v = (2 * Rng.int rng (limit / 2)) + 3 in
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      acc := v :: !acc
    end
  done;
  List.rev !acc

let mcm ~name ~seed ~constants =
  let ctx = fresh_ctx ~name ~seed in
  let x = input_class ctx in
  let outs = List.map (fun v -> class_of_value ctx ~input:x v) constants in
  let root = Egraph.Builder.add_class ctx.b in
  ignore (Egraph.Builder.add_node ctx.b ~cls:root ~op:"bundle" ~cost:0.0 ~children:outs);
  Egraph.Builder.freeze ctx.b ~root

let fir ~name ~seed ~taps =
  let ctx = fresh_ctx ~name ~seed in
  let x = input_class ctx in
  let coeffs = Array.of_list (random_odd_constants ctx.rng taps 200) in
  (* tap i: registered (delayed) input multiplied by coeff i *)
  let delayed = Array.make taps x in
  for i = 1 to taps - 1 do
    let c = Egraph.Builder.add_class ctx.b in
    ignore
      (Egraph.Builder.add_node ctx.b ~cls:c ~op:"reg" ~cost:reg_cost
         ~children:[ delayed.(i - 1) ]);
    delayed.(i) <- c
  done;
  let tap i = class_of_value ctx ~input:delayed.(i) coeffs.(i) in
  let taps_memo = Hashtbl.create taps in
  let leaf i =
    match Hashtbl.find_opt taps_memo i with
    | Some c -> c
    | None ->
        let c = tap i in
        Hashtbl.add taps_memo i c;
        c
  in
  let ranges = Hashtbl.create 32 in
  let root = sum_range ctx ranges leaf 0 taps in
  Egraph.Builder.freeze ctx.b ~root

let box ~name ~seed ~taps =
  let ctx = fresh_ctx ~name ~seed in
  let x = input_class ctx in
  let coeff = 2 * (3 + Rng.int ctx.rng 40) + 1 in
  let delayed = Array.make taps x in
  for i = 1 to taps - 1 do
    let c = Egraph.Builder.add_class ctx.b in
    ignore
      (Egraph.Builder.add_node ctx.b ~cls:c ~op:"reg" ~cost:reg_cost
         ~children:[ delayed.(i - 1) ]);
    delayed.(i) <- c
  done;
  (* alternative A: sum the delayed inputs, then one constant multiply *)
  let ranges_in = Hashtbl.create 16 in
  let sum_inputs = sum_range ctx ranges_in (fun i -> delayed.(i)) 0 taps in
  let mul_after = class_of_value ctx ~input:sum_inputs coeff in
  (* alternative B: multiply each delayed input, then sum the products *)
  let prod_memo = Hashtbl.create taps in
  let prod i =
    match Hashtbl.find_opt prod_memo i with
    | Some c -> c
    | None ->
        let c = class_of_value ctx ~input:delayed.(i) coeff in
        Hashtbl.add prod_memo i c;
        c
  in
  let ranges_out = Hashtbl.create 16 in
  let sum_products = sum_range ctx ranges_out prod 0 taps in
  let root = Egraph.Builder.add_class ctx.b in
  ignore (Egraph.Builder.add_node ctx.b ~cls:root ~op:"wire" ~cost:0.0 ~children:[ mul_after ]);
  ignore (Egraph.Builder.add_node ctx.b ~cls:root ~op:"wire" ~cost:0.0 ~children:[ sum_products ]);
  Egraph.Builder.freeze ctx.b ~root

let instances =
  [
    ("fir_5", fun () -> fir ~name:"fir_5" ~seed:105 ~taps:10);
    ("fir_6", fun () -> fir ~name:"fir_6" ~seed:106 ~taps:12);
    ("fir_7", fun () -> fir ~name:"fir_7" ~seed:107 ~taps:14);
    ("fir_8", fun () -> fir ~name:"fir_8" ~seed:108 ~taps:16);
    ("box_3", fun () -> box ~name:"box_3" ~seed:203 ~taps:6);
    ("box_4", fun () -> box ~name:"box_4" ~seed:204 ~taps:8);
    ("box_5", fun () -> box ~name:"box_5" ~seed:205 ~taps:10);
    ( "mcm_8",
      fun () ->
        mcm ~name:"mcm_8" ~seed:308 ~constants:(random_odd_constants (Rng.create 308) 8 300) );
    ( "mcm_9",
      fun () ->
        mcm ~name:"mcm_9" ~seed:309 ~constants:(random_odd_constants (Rng.create 309) 9 300) );
  ]
