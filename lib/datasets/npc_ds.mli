(** The adversarial NP-hard datasets of §5.3: minimum set cover and
    MaxSAT instances converted to e-graph extraction problems, following
    the reductions of Stepp [42] and Zhang [55].

    These conversions produce e-graphs saturated with common
    subexpressions (every element/clause class points into shared
    set/assignment classes), the regime where the paper shows heuristics
    losing 2–6× while ILP solves to optimality within seconds and
    SmoothE lands in between. *)

val set_cover :
  name:string -> seed:int -> universe:int -> sets:int -> max_set_size:int -> Egraph.t
(** Reduction: the root e-node depends on one e-class per universe
    element; an element's e-class holds one (free) e-node per covering
    set, pointing at that set's singleton e-class whose e-node costs the
    set's weight. DAG cost of a valid extraction = total weight of the
    chosen cover (each set counted once); tree cost overcounts per
    element, which is exactly what defeats the greedy heuristic. *)

val set_cover_optimum_upper : Egraph.t -> float
(** A cheap upper bound on the optimum from the classic ln-n greedy
    set-cover algorithm run on the recovered instance (diagnostics). *)

val maxsat :
  name:string -> seed:int -> vars:int -> clauses:int -> Egraph.t
(** Reduction: the root depends on one e-class per clause; a clause's
    class holds a free e-node per satisfying literal, each pointing at a
    polarity e-class (cost 1) of its variable. Selecting both polarities
    of a variable costs 2, one polarity costs 1 — so the optimum of a
    satisfiable instance is the number of distinct variables used. *)

val set_instances : (string * (unit -> Egraph.t)) list
val maxsat_instances : (string * (unit -> Egraph.t)) list
