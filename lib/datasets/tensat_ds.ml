open Term

let rules =
  List.concat
    [
      bidirectional ~name:"matmul-assoc"
        (papp "matmul" [ papp "matmul" [ pvar "a"; pvar "b" ]; pvar "c" ])
        (papp "matmul" [ pvar "a"; papp "matmul" [ pvar "b"; pvar "c" ] ]);
      bidirectional ~name:"matmul-fuse"
        (papp "add" [ papp "matmul" [ pvar "a"; pvar "b" ]; papp "matmul" [ pvar "a"; pvar "c" ] ])
        (papp "matmul" [ pvar "a"; papp "add" [ pvar "b"; pvar "c" ] ]);
      bidirectional ~name:"add-assoc"
        (papp "add" [ papp "add" [ pvar "a"; pvar "b" ]; pvar "c" ])
        (papp "add" [ pvar "a"; papp "add" [ pvar "b"; pvar "c" ] ]);
      bidirectional ~name:"conv-compose"
        (papp "conv" [ papp "conv" [ pvar "x"; pvar "w1" ]; pvar "w2" ])
        (papp "conv" [ pvar "x"; papp "compose" [ pvar "w1"; pvar "w2" ] ]);
      [
        rule ~name:"relu-idempotent"
          (papp "relu" [ papp "relu" [ pvar "x" ] ])
          (papp "relu" [ pvar "x" ]);
        rule ~name:"add-comm"
          (papp "add" [ pvar "a"; pvar "b" ])
          (papp "add" [ pvar "b"; pvar "a" ]);
        (* Identity introduction: puts (add x zero) in x's own e-class,
           creating the self-referential (cyclic) classes that make the
           acyclicity constraint non-trivial on tensat graphs. *)
        rule ~name:"add-zero-intro" (pvar "x") (papp "add" [ pvar "x"; patom "zero" ]);
        rule ~name:"concat-split"
          (papp "concat" [ papp "split0" [ pvar "x" ]; papp "split1" [ pvar "x" ] ])
          (pvar "x");
      ];
    ]

let op_cost op _arity =
  match op with
  | "conv" -> 20.0
  | "matmul" -> 12.0
  | "compose" -> 28.0
  | "add" -> 2.0
  | "relu" -> 1.0
  | "concat" -> 2.0
  | "split0" | "split1" -> 1.0
  | "zero" -> 0.0
  | _ when String.length op > 0 && (op.[0] = 'w' || op.[0] = 'x' || op.[0] = 'h') -> 0.0
  | _ -> 1.0

let conv x w = app "conv" [ x; w ]
let mm a b = app "matmul" [ a; b ]
let add a b = app "add" [ a; b ]
let relu x = app "relu" [ x ]
let w name = atom ("w" ^ name)

let vgg () =
  let rec chain x d =
    if d = 0 then x else chain (relu (conv x (w (Printf.sprintf "vgg%d" d)))) (d - 1)
  in
  chain (atom "x0") 14

let resnet () =
  let block x i =
    let branch = conv (relu (conv x (w (Printf.sprintf "rA%d" i)))) (w (Printf.sprintf "rB%d" i)) in
    relu (add x branch)
  in
  let rec stack x i = if i = 0 then x else stack (block x i) (i - 1) in
  stack (atom "x0") 10

let bert () =
  let layer h i =
    let attn = add h (mm (relu (mm h (w (Printf.sprintf "q%d" i)))) (w (Printf.sprintf "o%d" i))) in
    add attn (mm (relu (mm attn (w (Printf.sprintf "f%d" i)))) (w (Printf.sprintf "g%d" i)))
  in
  let rec stack h i = if i = 0 then h else stack (layer h i) (i - 1) in
  stack (atom "x0") 6

let nasnet_a () =
  let cell prev cur i =
    let b1 = relu (conv cur (w (Printf.sprintf "n1_%d" i))) in
    let b2 = add (conv cur (w (Printf.sprintf "n2_%d" i))) (conv prev (w (Printf.sprintf "n3_%d" i))) in
    let b3 = add (relu prev) (conv cur (w (Printf.sprintf "n4_%d" i))) in
    app "concat" [ b1; app "concat" [ b2; b3 ] ]
  in
  let rec stack prev cur i =
    if i = 0 then cur
    else begin
      let next = cell prev cur i in
      stack cur next (i - 1)
    end
  in
  stack (atom "x0") (atom "x1") 6

let nasrnn () =
  (* shared weights across unrolled steps: the common-subexpression-rich
     member of the family (SmoothE beats the heuristics here, Table 3) *)
  let step h x = relu (add (mm h (w "hh")) (mm x (w "xh"))) in
  let rec unroll h t = if t = 0 then h else unroll (step h (atom (Printf.sprintf "x%d" t))) (t - 1) in
  unroll (atom "h0") 12

let network = function
  | "NASNet-A" -> nasnet_a ()
  | "NASRNN" -> nasrnn ()
  | "BERT" -> bert ()
  | "VGG" -> vgg ()
  | "ResNet-50" -> resnet ()
  | name -> invalid_arg (Printf.sprintf "Tensat_ds.network: unknown network %S" name)

let build ?(node_limit = 6000) name =
  let g = Saturate.create () in
  let root = Saturate.add_term g (network name) in
  ignore (Saturate.run ~node_limit ~iter_limit:8 g rules);
  Saturate.export ~name g ~root ~cost:op_cost

let instances =
  List.map
    (fun name -> name, fun () -> build name)
    [ "NASNet-A"; "NASRNN"; "BERT"; "VGG"; "ResNet-50" ]
