(** The impress dataset: FPGA HLS e-graphs for large integer
    multiplication (Ustun et al., [47] in the paper).

    IMpress rewrites w-bit multiplications into recursive decompositions:
    schoolbook (four w/2 sub-multiplies) versus Karatsuba (three
    sub-multiplies at the price of extra additions). The low/low and
    high/high sub-products are *shared* between the two alternatives at
    every level, producing deep common-subexpression structure — Table 2
    shows plain greedy losing 280% on the worst impress graph while
    heuristic+ and ILP recover the optimum. Costs model FPGA resources:
    DSP-block base multipliers plus LUT adders proportional to width. *)

val multiply : name:string -> width:int -> base:int -> Egraph.t
(** E-graph of all recursive decompositions of a [width]-bit multiply
    down to [base]-bit DSP primitives. *)

val instances : (string * (unit -> Egraph.t)) list
(** Three e-graphs (as in Table 1): 128-, 256- and 512-bit multipliers. *)
