(** The rover dataset: datapath-synthesis e-graphs (Coward et al., cited
    as [12] in the paper) — FIR filters, box filters and multiple
    constant multiplication (MCM) blocks, the workloads of Table 3.

    Construction mirrors how the ROVER rewriter explores datapaths: each
    constant multiplication has alternative adder-graph decompositions
    (shift / add / subtract over shared "fundamentals"), and each
    summation has alternative association trees over shared partial-sum
    ranges. Costs model combinational area: adders pay per output bit,
    shifts are wiring (cheap), registers are small. The resulting
    e-graphs are rich in common subexpressions — exactly the regime
    where, per Table 3, greedy misses reuse on mcm_* while ILP and
    SmoothE find it. *)

val mcm : name:string -> seed:int -> constants:int list -> Egraph.t
(** An MCM block: multiply one input by each constant, sharing
    intermediate fundamentals. *)

val fir : name:string -> seed:int -> taps:int -> Egraph.t
(** An N-tap FIR filter: per-tap constant multiplies (with MCM sharing)
    feeding an output summation with alternative tree shapes. *)

val box : name:string -> seed:int -> taps:int -> Egraph.t
(** A box filter: equal coefficients, so sum-then-multiply competes with
    multiply-then-sum (distributivity alternatives). *)

val instances : (string * (unit -> Egraph.t)) list
(** The Table 3 instance list: fir_5..fir_8, box_3..box_5, mcm_8, mcm_9. *)
