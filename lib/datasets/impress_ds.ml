(* Operands are symbolic bit-slices of the two inputs; a multiplication
   class is keyed by its (left operand, right operand, width) so that
   sub-products shared between schoolbook and Karatsuba decompositions
   land in the same e-class. *)
type operand = Slice of char * int * int | Sum of operand * operand

let rec operand_id = function
  | Slice (v, lo, hi) -> Printf.sprintf "%c[%d:%d]" v lo hi
  | Sum (a, b) -> Printf.sprintf "(%s+%s)" (operand_id a) (operand_id b)

let dsp_cost = 30.0
let lut_add_cost w = 0.5 *. float_of_int w

type ctx = { b : Egraph.Builder.b; memo : (string, int) Hashtbl.t }

let rec mul_class ctx ~width ~base a bb =
  let key = Printf.sprintf "%s*%s@%d" (operand_id a) (operand_id bb) width in
  match Hashtbl.find_opt ctx.memo key with
  | Some c -> c
  | None ->
      let c = Egraph.Builder.add_class ctx.b in
      Hashtbl.add ctx.memo key c;
      if width <= base then
        ignore
          (Egraph.Builder.add_node ctx.b ~cls:c ~op:"dsp_mul" ~cost:dsp_cost ~children:[])
      else begin
        let h = width / 2 in
        let split = function
          | Slice (v, lo, hi) ->
              let mid = (lo + hi) / 2 in
              Slice (v, lo, mid), Slice (v, mid, hi)
          | Sum _ as s ->
              (* a sum operand behaves like a fresh value of the same
                 width; split it positionally through its id *)
              let id = operand_id s in
              Slice (Char.chr (Char.code 's' + (Hashtbl.hash id mod 8)), 0, h),
              Slice (Char.chr (Char.code 's' + (Hashtbl.hash (id ^ "#") mod 8)), h, 2 * h)
        in
        let a_lo, a_hi = split a in
        let b_lo, b_hi = split bb in
        (* schoolbook: ll, lh, hl, hh + 3 wide additions *)
        let ll = mul_class ctx ~width:h ~base a_lo b_lo in
        let lh = mul_class ctx ~width:h ~base a_lo b_hi in
        let hl = mul_class ctx ~width:h ~base a_hi b_lo in
        let hh = mul_class ctx ~width:h ~base a_hi b_hi in
        ignore
          (Egraph.Builder.add_node ctx.b ~cls:c ~op:"schoolbook"
             ~cost:(3.0 *. lut_add_cost width)
             ~children:[ ll; lh; hl; hh ]);
        (* karatsuba: ll, hh, (a_lo+a_hi)(b_lo+b_hi) + 6 additions *)
        let mid = mul_class ctx ~width:h ~base (Sum (a_lo, a_hi)) (Sum (b_lo, b_hi)) in
        ignore
          (Egraph.Builder.add_node ctx.b ~cls:c ~op:"karatsuba"
             ~cost:(6.0 *. lut_add_cost width)
             ~children:[ ll; hh; mid ])
      end;
      c

let multiply ~name ~width ~base =
  let ctx = { b = Egraph.Builder.create ~name (); memo = Hashtbl.create 256 } in
  let root =
    mul_class ctx ~width ~base (Slice ('a', 0, width)) (Slice ('b', 0, width))
  in
  Egraph.Builder.freeze ctx.b ~root

let instances =
  [
    ("mul_128", fun () -> multiply ~name:"mul_128" ~width:128 ~base:16);
    ("mul_256", fun () -> multiply ~name:"mul_256" ~width:256 ~base:16);
    ("mul_512", fun () -> multiply ~name:"mul_512" ~width:512 ~base:16);
  ]
