(* Functional-unit costs: a plain ALU op, the same op routed through a
   memory-adjacent unit (cheaper for loads, pricier for arithmetic), and
   fused units. *)
let alu_cost = 2.0
let mem_unit_cost = 3.0
let load_cost = 1.0
let mac_cost = 2.5  (* one fused unit vs. 2+2 for separate mul+add *)
let shift_cost = 1.0

type opkind = Load | Add of int * int | Mul of int * int | Shl1 of int | Sub of int * int

let kernel ~name ~seed ~ops =
  let rng = Rng.create seed in
  let b = Egraph.Builder.create ~name () in
  (* First synthesise a random DFG (values 0..ops-1, operands strictly
     earlier), then emit an e-class per value with its implementation
     alternatives. *)
  let kinds =
    Array.init ops (fun i ->
        if i < 4 then Load
        else begin
          let pick () = Rng.int rng i in
          match Rng.int rng 10 with
          | 0 | 1 | 2 | 3 -> Add (pick (), pick ())
          | 4 | 5 | 6 -> Mul (pick (), pick ())
          | 7 -> Shl1 (pick ())
          | 8 | 9 -> Sub (pick (), pick ())
          | _ -> assert false
        end)
  in
  let classes = Array.init ops (fun _ -> Egraph.Builder.add_class b) in
  let add_node cls op cost children =
    ignore (Egraph.Builder.add_node b ~cls ~op ~cost ~children)
  in
  Array.iteri
    (fun i kind ->
      let c = classes.(i) in
      match kind with
      | Load ->
          add_node c "load" load_cost [];
          add_node c "load_via_mem_unit" (load_cost *. 0.8) []
      | Add (x, y) ->
          add_node c "add" alu_cost [ classes.(x); classes.(y) ];
          add_node c "add_mem_unit" mem_unit_cost [ classes.(x); classes.(y) ];
          (* fused MAC when one operand is itself a multiply *)
          (match kinds.(x) with
          | Mul (u, v) -> add_node c "mac" mac_cost [ classes.(u); classes.(v); classes.(y) ]
          | Load | Add _ | Shl1 _ | Sub _ -> ());
          (match kinds.(y) with
          | Mul (u, v) -> add_node c "mac" mac_cost [ classes.(x); classes.(u); classes.(v) ]
          | Load | Add _ | Shl1 _ | Sub _ -> ());
          (* x + x = x << 1 *)
          if x = y then add_node c "shl1" shift_cost [ classes.(x) ]
      | Mul (x, y) ->
          add_node c "mul" alu_cost [ classes.(x); classes.(y) ];
          add_node c "mul_mem_unit" mem_unit_cost [ classes.(x); classes.(y) ]
      | Shl1 x ->
          add_node c "shl1" shift_cost [ classes.(x) ];
          (* strength-increase alternative: x*2 on the multiplier *)
          add_node c "mul2" alu_cost [ classes.(x) ];
          add_node c "add_self" alu_cost [ classes.(x); classes.(x) ]
      | Sub (x, y) ->
          add_node c "sub" alu_cost [ classes.(x); classes.(y) ];
          add_node c "sub_mem_unit" mem_unit_cost [ classes.(x); classes.(y) ])
    kinds;
  (* The kernel's outputs: the last few values plus any value nothing
     consumes, bundled under the root. *)
  let consumed = Array.make ops false in
  Array.iter
    (fun kind ->
      match kind with
      | Load -> ()
      | Add (x, y) | Mul (x, y) | Sub (x, y) ->
          consumed.(x) <- true;
          consumed.(y) <- true
      | Shl1 x -> consumed.(x) <- true)
    kinds;
  let outputs = ref [] in
  for i = ops - 1 downto 0 do
    if (not consumed.(i)) && kinds.(i) <> Load then outputs := classes.(i) :: !outputs
  done;
  if !outputs = [] then outputs := [ classes.(ops - 1) ];
  let root = Egraph.Builder.add_class b in
  ignore (Egraph.Builder.add_node b ~cls:root ~op:"store" ~cost:0.0 ~children:!outputs);
  Egraph.Builder.freeze b ~root

let instances =
  [
    ("bzip2_1", fun () -> kernel ~name:"bzip2_1" ~seed:411 ~ops:120);
    ("bzip2_2", fun () -> kernel ~name:"bzip2_2" ~seed:412 ~ops:200);
    ("ffmpeg_1", fun () -> kernel ~name:"ffmpeg_1" ~seed:421 ~ops:160);
    ("ffmpeg_2", fun () -> kernel ~name:"ffmpeg_2" ~seed:422 ~ops:260);
    ("ffmpeg_3", fun () -> kernel ~name:"ffmpeg_3" ~seed:423 ~ops:340);
    ("adpcm", fun () -> kernel ~name:"adpcm" ~seed:431 ~ops:90);
  ]
