(** The diospyros dataset: DSP auto-vectorisation e-graphs (VanHattum et
    al., [48] in the paper).

    Diospyros explores, per linear-algebra kernel, the space of scalar
    computations versus packed SIMD alternatives. Our generator builds
    both implementation families for each kernel: the scalar expression
    DAG (hash-consed, so repeated subterms share e-classes) and a
    vectorised pipeline (vector loads shared across lanes, broadcasts,
    fused multiply-accumulate chains, final packs). Per Table 2 the
    heuristic already extracts near-optimal solutions on this dataset —
    the vector alternatives dominate with little cross-alternative reuse
    tension — and the reproduction preserves that property. *)

val matmul : name:string -> n:int -> Egraph.t
(** Dense n×n matrix multiply. *)

val conv2d : name:string -> image:int -> kernel:int -> Egraph.t
(** 2-D convolution of an image×image input with a kernel×kernel filter. *)

val dot : name:string -> len:int -> Egraph.t

val instances : (string * (unit -> Egraph.t)) list
