let scalar_mul_cost = 1.0
let scalar_add_cost = 1.0
let load_cost = 0.3
let vec_op_cost = 1.3  (* one 4-lane op costs slightly more than one scalar op *)
let vec_load_cost = 0.5
let broadcast_cost = 0.4
let pack_cost = 0.6
let lanes = 4

type ctx = { b : Egraph.Builder.b; memo : (string, int) Hashtbl.t }

let node ctx ~cls ~op ~cost children =
  ignore (Egraph.Builder.add_node ctx.b ~cls ~op ~cost ~children)

let cls_memo ctx key fill =
  match Hashtbl.find_opt ctx.memo key with
  | Some c -> c
  | None ->
      let c = Egraph.Builder.add_class ctx.b in
      Hashtbl.add ctx.memo key c;
      fill c;
      c

let load ctx name = cls_memo ctx ("load:" ^ name) (fun c -> node ctx ~cls:c ~op:"load" ~cost:load_cost [])

let smul ctx a bb key =
  cls_memo ctx ("smul:" ^ key) (fun c -> node ctx ~cls:c ~op:"mul" ~cost:scalar_mul_cost [ a; bb ])

let sadd ctx a bb key =
  cls_memo ctx ("sadd:" ^ key) (fun c -> node ctx ~cls:c ~op:"add" ~cost:scalar_add_cost [ a; bb ])

let vload ctx name =
  cls_memo ctx ("vload:" ^ name) (fun c -> node ctx ~cls:c ~op:"vload" ~cost:vec_load_cost [])

let vbroadcast ctx src key =
  cls_memo ctx ("vbcast:" ^ key) (fun c -> node ctx ~cls:c ~op:"vbroadcast" ~cost:broadcast_cost [ src ])

(* n×n matmul: out(i,j) = Σ_k A(i,k)·B(k,j).
   Scalar family: per-output multiply/add chains over shared loads.
   Vector family: per output column j, a chain of vector FMAs
   vacc_k = vfma(vacc_{k-1}, vloadA_col(k), broadcast B(k,j)); the vector
   loads of A's columns are shared across all output columns. *)
let matmul ~name ~n =
  let ctx = { b = Egraph.Builder.create ~name (); memo = Hashtbl.create 256 } in
  let a i k = load ctx (Printf.sprintf "A%d_%d" i k) in
  let bmat k j = load ctx (Printf.sprintf "B%d_%d" k j) in
  let scalar_out i j =
    let terms =
      List.init n (fun k -> smul ctx (a i k) (bmat k j) (Printf.sprintf "A%d%dB%d%d" i k k j))
    in
    match terms with
    | [] -> invalid_arg "matmul: n = 0"
    | first :: rest ->
        List.fold_left
          (fun acc (idx, t) -> sadd ctx acc t (Printf.sprintf "o%d%d_%d" i j idx))
          first
          (List.mapi (fun idx t -> idx, t) rest)
  in
  let vec_col j gi =
    (* accumulate over k with vector FMAs; one vector covers the rows of
       lane chunk gi. A-column vector loads are shared across output
       columns j — the reuse that makes vectorisation pay. *)
    let va k = vload ctx (Printf.sprintf "Acol%d_g%d" k gi) in
    let vb k = vbroadcast ctx (bmat k j) (Printf.sprintf "B%d_%d" k j) in
    let rec chain k acc =
      if k = n then acc
      else begin
        let key = Printf.sprintf "vfma_c%d_g%d_k%d" j gi k in
        let c =
          cls_memo ctx key (fun cl ->
              node ctx ~cls:cl ~op:"vfma" ~cost:vec_op_cost [ acc; va k; vb k ])
        in
        chain (k + 1) c
      end
    in
    let zero = cls_memo ctx "vzero" (fun c -> node ctx ~cls:c ~op:"vzero" ~cost:0.1 []) in
    chain 0 zero
  in
  (* each output group (column, up-to-4 rows) can be a pack of scalars or
     a slice of the column's vector pipeline result *)
  let groups = ref [] in
  for j = 0 to n - 1 do
    let rows_per_group = (n + lanes - 1) / lanes in
    for gi = 0 to rows_per_group - 1 do
      let group =
        cls_memo ctx
          (Printf.sprintf "out_g%d_%d" gi j)
          (fun c ->
            let scalars =
              List.init (min lanes (n - (gi * lanes))) (fun r -> scalar_out ((gi * lanes) + r) j)
            in
            node ctx ~cls:c ~op:"pack" ~cost:pack_cost scalars;
            node ctx ~cls:c ~op:"vresult" ~cost:0.1 [ vec_col j gi ])
      in
      groups := group :: !groups
    done
  done;
  let root = Egraph.Builder.add_class ctx.b in
  node ctx ~cls:root ~op:"bundle" ~cost:0.0 (List.rev !groups);
  Egraph.Builder.freeze ctx.b ~root

(* conv2d: out(y,x) = Σ_{dy,dx} img(y+dy, x+dx)·k(dy,dx); vector family
   slides 4-wide vector loads (shared between adjacent outputs). *)
let conv2d ~name ~image ~kernel =
  let ctx = { b = Egraph.Builder.create ~name (); memo = Hashtbl.create 256 } in
  let out = image - kernel + 1 in
  let img y x = load ctx (Printf.sprintf "I%d_%d" y x) in
  let ker dy dx = load ctx (Printf.sprintf "K%d_%d" dy dx) in
  let scalar_out y x =
    let terms = ref [] in
    for dy = 0 to kernel - 1 do
      for dx = 0 to kernel - 1 do
        terms :=
          smul ctx (img (y + dy) (x + dx)) (ker dy dx) (Printf.sprintf "c%d%d_%d%d" y x dy dx)
          :: !terms
      done
    done;
    match !terms with
    | [] -> invalid_arg "conv2d: empty kernel"
    | first :: rest ->
        List.fold_left
          (fun acc (i, t) -> sadd ctx acc t (Printf.sprintf "s%d%d_%d" y x i))
          first
          (List.mapi (fun i t -> i, t) rest)
  in
  (* vector loads are keyed by (input row, lane chunk) so adjacent output
     rows share them — the reuse diospyros' shuffle search exploits *)
  let vrow row ch = vload ctx (Printf.sprintf "Irow%d_c%d" row ch) in
  let vec_out_row y ch =
    let zero = cls_memo ctx "vzero" (fun c -> node ctx ~cls:c ~op:"vzero" ~cost:0.1 []) in
    let acc = ref zero in
    for dy = 0 to kernel - 1 do
      for dx = 0 to kernel - 1 do
        let key = Printf.sprintf "vconv%d_%d_%d_%d" y ch dy dx in
        let vk = vbroadcast ctx (ker dy dx) (Printf.sprintf "K%d_%d" dy dx) in
        acc :=
          cls_memo ctx key (fun c ->
              node ctx ~cls:c ~op:"vfma" ~cost:vec_op_cost [ !acc; vrow (y + dy) ch; vk ])
      done
    done;
    !acc
  in
  let groups = ref [] in
  for y = 0 to out - 1 do
    let chunks = (out + lanes - 1) / lanes in
    for ch = 0 to chunks - 1 do
      let group =
        cls_memo ctx
          (Printf.sprintf "outrow%d_c%d" y ch)
          (fun c ->
            let width = min lanes (out - (ch * lanes)) in
            let scalars = List.init width (fun x -> scalar_out y ((ch * lanes) + x)) in
            node ctx ~cls:c ~op:"pack" ~cost:pack_cost scalars;
            node ctx ~cls:c ~op:"vresult" ~cost:0.1 [ vec_out_row y ch ])
      in
      groups := group :: !groups
    done
  done;
  let root = Egraph.Builder.add_class ctx.b in
  node ctx ~cls:root ~op:"bundle" ~cost:0.0 (List.rev !groups);
  Egraph.Builder.freeze ctx.b ~root

let dot ~name ~len =
  let ctx = { b = Egraph.Builder.create ~name (); memo = Hashtbl.create 64 } in
  let a i = load ctx (Printf.sprintf "a%d" i) in
  let bv i = load ctx (Printf.sprintf "b%d" i) in
  let scalar =
    let terms = List.init len (fun i -> smul ctx (a i) (bv i) (Printf.sprintf "ab%d" i)) in
    match terms with
    | [] -> invalid_arg "dot: len = 0"
    | first :: rest ->
        List.fold_left
          (fun acc (i, t) -> sadd ctx acc t (Printf.sprintf "acc%d" i))
          first
          (List.mapi (fun i t -> i, t) rest)
  in
  let vec =
    let zero = cls_memo ctx "vzero" (fun c -> node ctx ~cls:c ~op:"vzero" ~cost:0.1 []) in
    let chunks = (len + lanes - 1) / lanes in
    let acc = ref zero in
    for ch = 0 to chunks - 1 do
      let va = vload ctx (Printf.sprintf "va%d" ch) in
      let vb = vload ctx (Printf.sprintf "vb%d" ch) in
      acc :=
        cls_memo ctx (Printf.sprintf "vdot%d" ch) (fun c ->
            node ctx ~cls:c ~op:"vfma" ~cost:vec_op_cost [ !acc; va; vb ])
    done;
    cls_memo ctx "vreduce" (fun c -> node ctx ~cls:c ~op:"vreduce" ~cost:1.0 [ !acc ])
  in
  let root = Egraph.Builder.add_class ctx.b in
  node ctx ~cls:root ~op:"result" ~cost:0.0 [ scalar ];
  node ctx ~cls:root ~op:"result" ~cost:0.0 [ vec ];
  Egraph.Builder.freeze ctx.b ~root

let instances =
  [
    ("mat-mul_2x2", fun () -> matmul ~name:"mat-mul_2x2" ~n:2);
    ("mat-mul_3x3", fun () -> matmul ~name:"mat-mul_3x3" ~n:3);
    ("mat-mul_4x4", fun () -> matmul ~name:"mat-mul_4x4" ~n:4);
    ("2d-conv_3x3_3x3", fun () -> conv2d ~name:"2d-conv_3x3_3x3" ~image:5 ~kernel:3);
    ("2d-conv_8x8_3x3", fun () -> conv2d ~name:"2d-conv_8x8_3x3" ~image:8 ~kernel:3);
    ("dot_16", fun () -> dot ~name:"dot_16" ~len:16);
  ]
