let gen_set_cover_instance rng ~universe ~sets ~max_set_size =
  (* Every element must be coverable: seed each set with random members,
     then force-cover any orphaned element. *)
  let membership = Array.make sets [] in
  for s = 0 to sets - 1 do
    let size = 2 + Rng.int rng (max 1 (max_set_size - 1)) in
    let seen = Hashtbl.create size in
    for _ = 1 to size do
      let e = Rng.int rng universe in
      if not (Hashtbl.mem seen e) then begin
        Hashtbl.add seen e ();
        membership.(s) <- e :: membership.(s)
      end
    done
  done;
  let covered = Array.make universe false in
  Array.iter (fun members -> List.iter (fun e -> covered.(e) <- true) members) membership;
  for e = 0 to universe - 1 do
    if not covered.(e) then begin
      let s = Rng.int rng sets in
      membership.(s) <- e :: membership.(s)
    end
  done;
  let weights = Array.init sets (fun _ -> 1.0 +. float_of_int (Rng.int rng 9)) in
  membership, weights

let set_cover ~name ~seed ~universe ~sets ~max_set_size =
  let rng = Rng.create seed in
  let membership, weights = gen_set_cover_instance rng ~universe ~sets ~max_set_size in
  let b = Egraph.Builder.create ~name () in
  let set_class = Array.init sets (fun _ -> Egraph.Builder.add_class b) in
  Array.iteri
    (fun s c ->
      ignore
        (Egraph.Builder.add_node b ~cls:c
           ~op:(Printf.sprintf "set%d" s)
           ~cost:weights.(s) ~children:[]))
    set_class;
  let element_class = Array.init universe (fun _ -> Egraph.Builder.add_class b) in
  Array.iteri
    (fun s members ->
      List.iter
        (fun e ->
          ignore
            (Egraph.Builder.add_node b ~cls:element_class.(e)
               ~op:(Printf.sprintf "cover%d_by%d" e s)
               ~cost:0.0
               ~children:[ set_class.(s) ]))
        members)
    membership;
  let root = Egraph.Builder.add_class b in
  ignore
    (Egraph.Builder.add_node b ~cls:root ~op:"cover_all" ~cost:0.0
       ~children:(Array.to_list element_class));
  Egraph.Builder.freeze b ~root

let set_cover_optimum_upper g =
  (* Recover the instance from the e-graph structure: element classes are
     the root node's children; their nodes point at set classes. *)
  let root_node = g.Egraph.class_nodes.(g.Egraph.root).(0) in
  let element_classes = g.Egraph.children.(root_node) in
  let set_of_class = Hashtbl.create 64 in
  Array.iter
    (fun ec ->
      Array.iter
        (fun n ->
          Array.iter
            (fun sc ->
              let elems = Option.value ~default:[] (Hashtbl.find_opt set_of_class sc) in
              Hashtbl.replace set_of_class sc (ec :: elems))
            g.Egraph.children.(n))
        g.Egraph.class_nodes.(ec))
    element_classes;
  let uncovered = Hashtbl.create (Array.length element_classes) in
  Array.iter (fun ec -> Hashtbl.replace uncovered ec ()) element_classes;
  let total = ref 0.0 in
  while Hashtbl.length uncovered > 0 do
    (* classic greedy: cheapest cost per newly covered element *)
    let best = ref None in
    Hashtbl.iter
      (fun sc elems ->
        let gain = List.length (List.filter (Hashtbl.mem uncovered) elems) in
        if gain > 0 then begin
          let weight = g.Egraph.costs.(g.Egraph.class_nodes.(sc).(0)) in
          let ratio = weight /. float_of_int gain in
          match !best with
          | Some (r, _, _) when r <= ratio -> ()
          | Some _ | None -> best := Some (ratio, sc, elems)
        end)
      set_of_class;
    match !best with
    | None -> Hashtbl.reset uncovered (* defensive: should not happen *)
    | Some (_, sc, elems) ->
        total := !total +. g.Egraph.costs.(g.Egraph.class_nodes.(sc).(0));
        List.iter (Hashtbl.remove uncovered) elems;
        Hashtbl.remove set_of_class sc
  done;
  !total

let maxsat ~name ~seed ~vars ~clauses =
  let rng = Rng.create seed in
  let b = Egraph.Builder.create ~name () in
  let pos = Array.init vars (fun _ -> Egraph.Builder.add_class b) in
  let neg = Array.init vars (fun _ -> Egraph.Builder.add_class b) in
  for v = 0 to vars - 1 do
    ignore
      (Egraph.Builder.add_node b ~cls:pos.(v) ~op:(Printf.sprintf "x%d" v) ~cost:1.0 ~children:[]);
    ignore
      (Egraph.Builder.add_node b ~cls:neg.(v)
         ~op:(Printf.sprintf "not_x%d" v)
         ~cost:1.0 ~children:[])
  done;
  let clause_classes = ref [] in
  for c = 0 to clauses - 1 do
    let cls = Egraph.Builder.add_class b in
    clause_classes := cls :: !clause_classes;
    (* 3 distinct literals *)
    let seen = Hashtbl.create 3 in
    let lits = ref 0 in
    while !lits < 3 do
      let v = Rng.int rng vars in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        incr lits;
        let polarity = Rng.bool rng in
        let target = if polarity then pos.(v) else neg.(v) in
        ignore
          (Egraph.Builder.add_node b ~cls
             ~op:(Printf.sprintf "c%d_%s%d" c (if polarity then "p" else "n") v)
             ~cost:0.0 ~children:[ target ])
      end
    done
  done;
  let root = Egraph.Builder.add_class b in
  ignore
    (Egraph.Builder.add_node b ~cls:root ~op:"all_clauses" ~cost:0.0
       ~children:(List.rev !clause_classes));
  Egraph.Builder.freeze b ~root

let set_instances =
  [
    ( "set_cover_small",
      fun () -> set_cover ~name:"set_cover_small" ~seed:501 ~universe:30 ~sets:60 ~max_set_size:6 );
    ( "set_cover_mid",
      fun () -> set_cover ~name:"set_cover_mid" ~seed:502 ~universe:60 ~sets:120 ~max_set_size:8 );
    ( "set_cover_dense",
      fun () -> set_cover ~name:"set_cover_dense" ~seed:503 ~universe:40 ~sets:90 ~max_set_size:14 );
    ( "set_cover_large",
      fun () ->
        set_cover ~name:"set_cover_large" ~seed:504 ~universe:100 ~sets:200 ~max_set_size:10 );
  ]

let maxsat_instances =
  [
    ("maxsat_40_150", fun () -> maxsat ~name:"maxsat_40_150" ~seed:601 ~vars:40 ~clauses:150);
    ("maxsat_30_90", fun () -> maxsat ~name:"maxsat_30_90" ~seed:602 ~vars:30 ~clauses:90);
    ("maxsat_50_180", fun () -> maxsat ~name:"maxsat_50_180" ~seed:603 ~vars:50 ~clauses:180);
    ("maxsat_25_120", fun () -> maxsat ~name:"maxsat_25_120" ~seed:604 ~vars:25 ~clauses:120);
    ("maxsat_60_210", fun () -> maxsat ~name:"maxsat_60_210" ~seed:605 ~vars:60 ~clauses:210);
    ("maxsat_35_140", fun () -> maxsat ~name:"maxsat_35_140" ~seed:606 ~vars:35 ~clauses:140);
  ]
