let op_cost op _arity =
  match op with
  | "+" -> 2.0
  | "sq" -> 5.0
  | "recip" -> 5.0
  | "sec" | "cos" | "tan" -> 10.0
  | "one" | "alpha" -> 0.0
  | _ -> 1.0

let egraph () =
  let b = Egraph.Builder.create ~name:"fig1" () in
  let c_alpha = Egraph.Builder.add_class b in
  let c_tan = Egraph.Builder.add_class b in
  let c_cos = Egraph.Builder.add_class b in
  let c_sec = Egraph.Builder.add_class b in
  let c_tansq = Egraph.Builder.add_class b in
  let c_one = Egraph.Builder.add_class b in
  let c_sq = Egraph.Builder.add_class b in
  let c_root = Egraph.Builder.add_class b in
  let add cls op children =
    ignore
      (Egraph.Builder.add_node b ~cls ~op ~cost:(op_cost op (List.length children)) ~children)
  in
  add c_alpha "alpha" [];
  add c_tan "tan" [ c_alpha ];
  add c_cos "cos" [ c_alpha ];
  add c_sec "sec" [ c_alpha ];
  add c_sec "recip" [ c_cos ];
  add c_tansq "sq" [ c_tan ];
  add c_one "one" [];
  add c_sq "sq" [ c_sec ];
  add c_sq "+" [ c_one; c_tansq ];
  add c_root "+" [ c_sq; c_tan ];
  Egraph.Builder.freeze b ~root:c_root

let egraph_via_saturation () =
  let g = Saturate.create () in
  let open Term in
  (* sec²α + tan α *)
  let initial = app "+" [ app "sq" [ app "sec" [ atom "alpha" ] ]; app "tan" [ atom "alpha" ] ] in
  let root = Saturate.add_term g initial in
  let rules =
    [
      (* sec a -> 1/cos a *)
      rule ~name:"sec-recip" (papp "sec" [ pvar "a" ]) (papp "recip" [ papp "cos" [ pvar "a" ] ]);
      (* sec²a -> 1 + tan²a *)
      rule ~name:"pythagorean"
        (papp "sq" [ papp "sec" [ pvar "a" ] ])
        (papp "+" [ patom "one"; papp "sq" [ papp "tan" [ pvar "a" ] ] ]);
    ]
  in
  ignore (Saturate.run g rules);
  Saturate.export ~name:"fig1-saturated" g ~root ~cost:op_cost

let heuristic_cost = 27.0
let optimal_cost = 19.0
