(** The flexc dataset: CGRA-mapping e-graphs (Woodruff et al., [51] in
    the paper), built from loop-kernel dataflow graphs of the style flexc
    harvests from bzip2 and FFmpeg.

    A random (seeded, reproducible) arithmetic dataflow graph is
    generated per workload; rewriting alternatives model what a CGRA
    mapper can choose between: fused multiply-accumulate covering a
    mul+add pair, strength-reduced shifts for ×2ⁿ, doubled operands
    (x+x = x≪1), and per-operation functional-unit choices with
    different costs. Degree stays low (paper: d(v)=1.8) and e-classes
    stay small, the regime where both heuristics and SmoothE do well. *)

val kernel : name:string -> seed:int -> ops:int -> Egraph.t

val instances : (string * (unit -> Egraph.t)) list
