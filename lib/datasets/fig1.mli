(** The paper's running example (Figures 1–3): sec²α + tan α.

    Two rewrites — sec α → 1/cos α and sec²α → 1 + tan²α — expand the
    initial term into an e-graph with eight e-classes. Costs follow
    Figure 2: [+]=2, [x²]=5, [1/x]=5, [sec]=[cos]=[tan]=10, constants
    and α free. The greedy heuristic extracts cost 27 (Fig. 2b); the
    optimum reuses tan α and costs 19 (Fig. 2c). *)

val egraph : unit -> Egraph.t
(** Built directly, class by class. *)

val egraph_via_saturation : unit -> Egraph.t
(** The same e-graph produced by running the two rewrites through the
    equality-saturation engine on the initial term — the test-suite
    checks both constructions agree on extraction costs. *)

val heuristic_cost : float
(** 27, the cost the paper reports for the greedy extractor. *)

val optimal_cost : float
(** 19, the optimum with tan α reused. *)
