(** The dataset registry: the seven benchmark suites of Table 1 with
    their per-dataset metadata (task description, representative
    workloads, and the per-dataset correlation assumption the paper's
    Table 2 caption specifies for SmoothE). *)

type instance = { inst_name : string; build : unit -> Egraph.t }

type dataset = {
  ds_name : string;
  task : string;
  workloads : string;
  assumption : string;  (** "independent" | "correlated" | "hybrid" (Table 2 caption) *)
  adversarial : bool;
  instances : instance list;
}

val diospyros : dataset
val flexc : dataset
val impress : dataset
val rover : dataset
val tensat : dataset
val set_cover : dataset
val maxsat : dataset

val realistic : dataset list
(** The five realistic suites of Table 2, in the paper's order. *)

val adversarial : dataset list
(** set and maxsat (Table 4). *)

val all : dataset list

val find : string -> dataset
(** @raise Not_found on unknown names. *)

val find_instance : string -> instance
(** Look up a named e-graph across all datasets ("fir_5", "BERT", ...). *)
