type key = string

let key ~fingerprint ~graph_crc ~config_digest =
  Printf.sprintf "%s|crc=%08x|%s"
    (Checkpoint.fingerprint_to_string fingerprint)
    graph_crc config_digest

type 'a t = {
  cap : int;
  tbl : (key, 'a * int ref) Hashtbl.t;
  mutable tick : int;  (** monotonically increasing recency stamp *)
  mutable hits : int;
  mutable misses : int;
  m : Mutex.t;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Serve_cache.create: capacity must be >= 0";
  {
    cap = capacity;
    tbl = Hashtbl.create (max 16 capacity);
    tick = 0;
    hits = 0;
    misses = 0;
    m = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let capacity t = t.cap
let size t = locked t (fun () -> Hashtbl.length t.tbl)

let find t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl k with
      | Some (v, stamp) ->
          t.tick <- t.tick + 1;
          stamp := t.tick;
          t.hits <- t.hits + 1;
          Some v
      | None ->
          t.misses <- t.misses + 1;
          None)

let evict_lru t =
  (* O(size) scan; the cache is small (hundreds of entries) and
     eviction only runs on insert-at-capacity *)
  let victim =
    Hashtbl.fold
      (fun k (_, stamp) acc ->
        match acc with
        | Some (_, best) when best <= !stamp -> acc
        | _ -> Some (k, !stamp))
      t.tbl None
  in
  match victim with Some (k, _) -> Hashtbl.remove t.tbl k | None -> ()

let add t k v =
  if t.cap > 0 then
    locked t (fun () ->
        t.tick <- t.tick + 1;
        (if not (Hashtbl.mem t.tbl k) then
           while Hashtbl.length t.tbl >= t.cap do
             evict_lru t
           done);
        Hashtbl.replace t.tbl k (v, ref t.tick))

let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
