module P = Serve_protocol

type config = {
  queue_limit : int;
  executors : int;
  default_budget : float;
  max_budget : float;
  retry_attempts : int;
  cache_capacity : int;
  preflight : bool;
  plan : Smoothe_config.plan_mode;
}

let default_config =
  {
    queue_limit = 64;
    executors = 0;
    default_budget = 30.0;
    max_budget = 300.0;
    retry_attempts = 2;
    cache_capacity = 128;
    preflight = false;
    plan = Smoothe_config.Plan_off;
  }

let validate_config c =
  let ( let* ) = Result.bind in
  let* _ = P.positive_int ~what:"queue limit" c.queue_limit in
  let* _ =
    if c.executors < 0 then
      Error (Printf.sprintf "executors must be >= 0, got %d" c.executors)
    else Ok c.executors
  in
  let* _ = P.positive_float ~what:"default budget" c.default_budget in
  let* _ = P.positive_float ~what:"max budget" c.max_budget in
  let* _ = P.positive_int ~what:"retry attempts" c.retry_attempts in
  let* _ =
    if c.cache_capacity < 0 then
      Error (Printf.sprintf "cache capacity must be >= 0, got %d" c.cache_capacity)
    else Ok c.cache_capacity
  in
  Ok c

(* A ticket is the engine's promise of a response: the admission path
   hands it to the caller, an executor fulfils it. *)
type ticket = {
  req : P.request;
  rid : string;  (** request id minted at admission; see [mint_rid] *)
  jrid : string;
      (** journal id: equals [rid] for fresh requests; a replayed
          request keeps the rid its admitted frame was journaled under,
          so its completion frame closes that frame *)
  graph : Egraph.t;
  cache_key : Serve_cache.key option;
  budget : float;
  overall : Timer.deadline;  (** includes queue wait; armed at admission *)
  enq_at : float;
  tk_m : Mutex.t;
  tk_cv : Condition.t;
  mutable resp : P.response option;
}

type offer_outcome = Queued of ticket | Done of P.response

type t = {
  cfg : config;
  adm : Admission.t;
  q : ticket Queue.t;
  m : Mutex.t;
  cv_work : Condition.t;  (** executors wait here for arrivals *)
  cv_idle : Condition.t;  (** drain waits here for quiescence *)
  cache : P.ok_body Serve_cache.t;
  daemon_health : Health.log;
  journal : Serve_journal.t option;
  created_at : float;
  mutable seq : int;  (** request-id sequence, guarded by [m] *)
  mutable latency_est_ms : float;
  mutable replayed : int;  (** journal replays this process performed *)
  mutable warmed : int;  (** cache entries restored from the journal *)
  mutable domains : unit Domain.t list;
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Every request that reaches [offer] gets a daemon-unique id — the
   client id plus an admission sequence number — stamped on its log
   lines, its [serve.request] trace span and its health events, so one
   request can be followed across queue -> retry -> cache -> solution
   even when clients reuse ids. *)
let mint_rid t id =
  let n = locked t (fun () -> t.seq <- t.seq + 1; t.seq) in
  Printf.sprintf "%s#%d" (if id = "" then "anon" else id) n

let fulfill tk resp =
  Mutex.lock tk.tk_m;
  tk.resp <- Some resp;
  Condition.broadcast tk.tk_cv;
  Mutex.unlock tk.tk_m

let await tk =
  Mutex.lock tk.tk_m;
  let rec wait () =
    match tk.resp with
    | Some r -> r
    | None ->
        Condition.wait tk.tk_cv tk.tk_m;
        wait ()
  in
  Fun.protect ~finally:(fun () -> Mutex.unlock tk.tk_m) wait

let peek tk =
  Mutex.lock tk.tk_m;
  let r = tk.resp in
  Mutex.unlock tk.tk_m;
  r

(* --- request resolution ------------------------------------------------ *)

let resolve_graph req =
  match req.P.source with
  | P.Inline text -> (
      match Egraph.Serial.of_string text with
      | g -> Ok g
      | exception Failure msg -> Error (Printf.sprintf "unparsable e-graph: %s" msg))
  | P.Instance name -> (
      match Registry.find_instance name with
      | inst -> Ok (inst.Registry.build ())
      | exception Not_found -> Error (Printf.sprintf "unknown instance %S" name))

let apply_costs req g =
  match req.P.costs with
  | None -> Ok g
  | Some costs -> (
      match Egraph.set_costs g costs with
      | g -> Ok g
      | exception Invalid_argument msg -> Error (Printf.sprintf "bad cost override: %s" msg))

let cache_key_of req g =
  (* canonical serialized text (cost overrides already applied), so the
     key tracks content, not submission formatting *)
  let text = Egraph.Serial.to_string g in
  let fingerprint =
    {
      Checkpoint.fp_graph = g.Egraph.name;
      fp_nodes = Egraph.num_nodes g;
      fp_classes = Egraph.num_classes g;
      fp_seed = req.P.seed;
      fp_batch = req.P.batch;
    }
  in
  let config_digest =
    Printf.sprintf "m=%s;iters=%d;lambda=%h" (P.method_name req.P.method_) req.P.iters
      req.P.lambda_
  in
  Serve_cache.key ~fingerprint ~graph_crc:(Checksum.crc32 text) ~config_digest

(* --- execution --------------------------------------------------------- *)

let choices_of_solution = function
  | None -> []
  | Some s ->
      let acc = ref [] in
      Array.iteri
        (fun cls node -> match node with Some n -> acc := (cls, n) :: !acc | None -> ())
        s.Egraph.Solution.choice;
      List.rev !acc

let run_extraction cfg req g ~health ~time_limit =
  match req.P.method_ with
  | P.Greedy -> (Greedy.extract g, 0)
  | P.Greedy_dag -> (Greedy_dag.extract g, 0)
  | P.Smoothe ->
      let config =
        {
          Smoothe_config.default with
          Smoothe_config.batch = req.P.batch;
          max_iters = req.P.iters;
          time_limit;
          seed = req.P.seed;
          lambda_ = req.P.lambda_;
          plan = cfg.plan;
        }
      in
      let run = Smoothe_extract.extract ~config ~health ~preflight:cfg.preflight g in
      (run.Smoothe_extract.result, run.Smoothe_extract.iterations)

let execute t tk =
  let req = tk.req in
  let queue_ms = Float.max 0.0 ((Timer.now () -. tk.enq_at) *. 1000.0) in
  if !Obs.on then Metrics.observe "serve.queue_ms" queue_ms;
  Log.emit ~req:tk.rid ~event:"request.dequeued" [ ("queue_ms", Json.Number queue_ms) ];
  if Timer.expired tk.overall then begin
    if !Obs.on then Metrics.incr "serve.deadline_expired";
    Log.emit ~req:tk.rid ~event:"request.deadline_expired"
      [ ("where", Json.String "queue"); ("queue_ms", Json.Number queue_ms) ];
    P.error_response ~queue_ms ~id:req.P.id P.Deadline_expired
      (Printf.sprintf "deadline passed after %.1fms in queue" queue_ms)
  end
  else begin
    let health = Health.create () in
    let member = "request:" ^ tk.rid in
    let budget = Float.min tk.budget (Timer.remaining tk.overall) in
    let supervised () =
      Supervisor.run_retrying ~health ~rng:(Rng.create (req.P.seed + 0x5eed))
        ~attempts:t.cfg.retry_attempts ~backoff:0.01 ~name:member ~budget
        (fun ~attempt:_ dl -> run_extraction t.cfg req tk.graph ~health ~time_limit:(Timer.remaining dl))
    in
    let outcome, dt =
      Timer.time (fun () ->
          Trace.with_span ~cat:"serve"
            ~attrs:
              (if !Obs.on then
                 [
                   ("id", req.P.id);
                   ("rid", tk.rid);
                   ("method", P.method_name req.P.method_);
                 ]
               else [])
            "serve.request"
            (fun () ->
              if req.P.fault_plan = "" then supervised ()
              else Fault_plan.with_plan (Fault_plan.of_string req.P.fault_plan) supervised))
    in
    let elapsed_ms = dt *. 1000.0 in
    if !Obs.on then Metrics.observe "serve.request_ms" elapsed_ms;
    (* replay the request's health timeline onto the log with its id:
       retries, faults and recoveries stay attributable per request *)
    (match Log.sink () with
    | Log.Silent -> ()
    | Log.Memory | Log.Channel _ ->
        List.iter
          (fun e ->
            Log.emit ~req:tk.rid ~event:"request.health"
              [
                ("kind", Json.String (Health.kind_name e.Health.kind));
                ("member", Json.String e.Health.member);
                ("detail", Json.String e.Health.detail);
              ])
          (Health.events health));
    locked t (fun () -> Health.merge ~into:t.daemon_health health);
    match outcome with
    | Supervisor.Finished _ when Timer.expired tk.overall ->
        (* the overall deadline is a response deadline: a result the
           client has already given up on is not a success *)
        if !Obs.on then Metrics.incr "serve.deadline_expired";
        Log.emit ~req:tk.rid ~event:"request.deadline_expired"
          [ ("where", Json.String "completion"); ("elapsed_ms", Json.Number elapsed_ms) ];
        {
          (P.error_response ~queue_ms ~id:req.P.id P.Deadline_expired
             (Printf.sprintf "completed after the %.1fms deadline"
                (Option.value ~default:0.0 req.P.deadline_ms)))
          with
          P.elapsed_ms;
        }
    | Supervisor.Finished (result, iterations) ->
        let valid =
          match result.Extractor.solution with
          | Some s -> Egraph.Solution.is_valid tk.graph s
          | None -> false
        in
        let body =
          {
            P.cost = result.Extractor.cost;
            valid;
            choices = choices_of_solution result.Extractor.solution;
            iterations;
            cache_hit = false;
            health = Health.summary health;
          }
        in
        (* only fault-free, valid runs are worth replaying to the next
           client; a faulted run answers its own request but is not
           representative *)
        (match tk.cache_key with
        | Some key when valid && req.P.fault_plan = "" -> Serve_cache.add t.cache key body
        | Some _ | None -> ());
        if !Obs.on then begin
          Metrics.incr "serve.completed";
          Metrics.mark "serve.completed.rate"
        end;
        Log.emit ~req:tk.rid ~event:"request.completed"
          [
            ("cost", Json.Number result.Extractor.cost);
            ("valid", Json.Bool valid);
            ("iterations", Json.Number (float_of_int iterations));
            ("elapsed_ms", Json.Number elapsed_ms);
          ];
        { P.resp_id = req.P.id; elapsed_ms; queue_ms; body = Ok body }
    | Supervisor.Crashed { exn } ->
        if !Obs.on then Metrics.incr "serve.crashed";
        Log.emit ~req:tk.rid ~event:"request.crashed" [ ("error", Json.String exn) ];
        {
          (P.error_response ~queue_ms ~id:req.P.id P.Crashed
             (Printf.sprintf "run failed after %d attempt(s): %s" t.cfg.retry_attempts exn))
          with
          P.elapsed_ms;
        }
  end

(* --- executor loop ----------------------------------------------------- *)

let finish_one t =
  Mutex.lock t.m;
  Admission.finish t.adm;
  if !Obs.on then
    Metrics.set_gauge "serve.queue_depth" (float_of_int (Admission.snapshot t.adm).Admission.queued);
  if Admission.idle t.adm then Condition.broadcast t.cv_idle;
  Mutex.unlock t.m

let record_latency t elapsed_ms =
  (* rolling estimate backing the shed responses' retry-after hints *)
  Mutex.lock t.m;
  t.latency_est_ms <- (0.8 *. t.latency_est_ms) +. (0.2 *. elapsed_ms);
  Mutex.unlock t.m

(* Durably mark the ticket answered. For cacheable successes the frame
   carries the cache key and body, so the next process can warm its
   solution cache and serve retries of this request as hits. A journal
   write failure here must not kill the executor: the response still
   goes out, the request merely replays (harmlessly) on next start. *)
let journal_completion t tk resp =
  match t.journal with
  | None -> ()
  | Some j -> (
      let key, body =
        match (resp.P.body, tk.cache_key) with
        | Ok b, Some key when b.P.valid && tk.req.P.fault_plan = "" ->
            (Some key, Some { b with P.cache_hit = false })
        | _ -> (None, None)
      in
      try
        Serve_journal.append_completed j ~rid:tk.jrid ?key ?body ();
        if !Obs.on then Metrics.incr "serve.journal.appends"
      with e ->
        locked t (fun () ->
            Health.record t.daemon_health ~member:"journal" Health.Degraded
              ("completion append failed: " ^ Printexc.to_string e));
        Log.emit ~req:tk.rid ~event:"journal.append_failed"
          [ ("error", Json.String (Printexc.to_string e)) ])

let execute_and_fulfill t tk =
  let resp =
    match execute t tk with
    | resp -> resp
    | exception e ->
        (* an executor must never die with its request *)
        locked t (fun () ->
            Health.record t.daemon_health ~member:("request:" ^ tk.rid)
              Health.Member_failed (Printexc.to_string e));
        if !Obs.on then Metrics.incr "serve.internal_errors";
        Log.emit ~req:tk.rid ~event:"request.internal_error"
          [ ("error", Json.String (Printexc.to_string e)) ];
        P.error_response ~id:tk.req.P.id P.Internal (Printexc.to_string e)
  in
  journal_completion t tk resp;
  (* settle the admission counters before the caller can observe the
     response, so a stats probe right after a reply never sees the
     finished request still in flight *)
  finish_one t;
  fulfill tk resp;
  record_latency t resp.P.elapsed_ms;
  (* deliberately outside the per-request guard above: a
     crash-in-flight fault models an engine bug that escapes request
     supervision and kills the daemon with work still queued *)
  Fault_plan.crash_in_flight
    ~completed:(locked t (fun () -> (Admission.snapshot t.adm).Admission.completed))

let rec exec_loop t =
  Mutex.lock t.m;
  let rec next () =
    if not (Queue.is_empty t.q) then
      match Admission.state t.adm with
      | Admission.Stopped -> `Exit  (* stop() fails the leftovers *)
      | Admission.Accepting | Admission.Draining -> `Work (Queue.pop t.q)
    else
      match Admission.state t.adm with
      | Admission.Stopped | Admission.Draining -> `Exit
      | Admission.Accepting ->
          Condition.wait t.cv_work t.m;
          next ()
  in
  match next () with
  | `Exit ->
      Condition.broadcast t.cv_idle;
      Mutex.unlock t.m
  | `Work tk ->
      Admission.start t.adm;
      if !Obs.on then
        Metrics.set_gauge "serve.queue_depth"
          (float_of_int (Admission.snapshot t.adm).Admission.queued);
      Mutex.unlock t.m;
      execute_and_fulfill t tk;
      exec_loop t

(* --- lifecycle --------------------------------------------------------- *)

let create ?(config = default_config) ?journal () =
  (match validate_config config with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Serve_engine.create: " ^ msg));
  let t =
    {
      cfg = config;
      adm = Admission.create ~queue_limit:config.queue_limit;
      q = Queue.create ();
      m = Mutex.create ();
      cv_work = Condition.create ();
      cv_idle = Condition.create ();
      cache = Serve_cache.create ~capacity:config.cache_capacity;
      daemon_health = Health.create ();
      journal;
      created_at = Timer.now ();
      seq = 0;
      latency_est_ms = 50.0;
      replayed = 0;
      warmed = 0;
      domains = [];
    }
  in
  (match journal with
  | None -> ()
  | Some j ->
      (* warm the solution cache from the journal's carried-forward
         completions before any executor starts, so replays and client
         retries of already-answered requests hit instead of recompute *)
      List.iter (fun (key, body) -> Serve_cache.add t.cache key body) (Serve_journal.warm j);
      t.warmed <- List.length (Serve_journal.warm j);
      if !Obs.on && t.warmed > 0 then
        Metrics.set_gauge "serve.journal.warmed" (float_of_int t.warmed);
      List.iter
        (fun (file, reason) ->
          Health.record t.daemon_health ~member:"journal" Health.Journal_torn
            (Printf.sprintf "%s: %s" file reason);
          if !Obs.on then Metrics.incr "serve.journal.torn";
          Log.emit ~event:"journal.torn"
            [ ("file", Json.String file); ("reason", Json.String reason) ])
        (Serve_journal.torn j));
  t.domains <- List.init config.executors (fun _ -> Domain.spawn (fun () -> exec_loop t));
  t

let fresh_ticket req ~rid ~jrid graph cache_key ~budget ~overall =
  {
    req;
    rid;
    jrid;
    graph;
    cache_key;
    budget;
    overall;
    enq_at = Timer.now ();
    tk_m = Mutex.create ();
    tk_cv = Condition.create ();
    resp = None;
  }

(* [replay = Some jrid] re-offers a journaled request after a restart:
   it runs the full validation/cache/admission gauntlet like any fresh
   request, but keeps the journal rid of its existing admitted frame
   (so its completion closes that frame) and skips re-journaling the
   admission (the open-time compaction already carried the frame into
   the current generation). *)
let offer_aux t req ~replay =
  let rid = mint_rid t req.P.id in
  if !Obs.on then begin
    Metrics.incr "serve.requests";
    Metrics.mark "serve.offered.rate"
  end;
  Log.emit ~req:rid ~event:"request.received"
    [
      ("id", Json.String req.P.id);
      ("method", Json.String (P.method_name req.P.method_));
    ];
  let bad msg =
    Log.emit ~req:rid ~event:"request.rejected" [ ("error", Json.String msg) ];
    Done (P.error_response ~id:req.P.id P.Bad_request msg)
  in
  if req.P.fault_plan <> "" && t.cfg.executors > 1 then
    bad "per-request fault plans need a daemon with at most one executor (they install \
         process-ambient state)"
  else
    match Result.bind (resolve_graph req) (apply_costs req) with
    | Error msg -> bad msg
    | Ok graph -> (
        let budget =
          Float.min t.cfg.max_budget (Option.value ~default:t.cfg.default_budget req.P.budget)
        in
        let key =
          if req.P.use_cache && Serve_cache.capacity t.cache > 0 then
            Some (cache_key_of req graph)
          else None
        in
        let cached = Option.bind key (Serve_cache.find t.cache) in
        match cached with
        | Some body ->
            if !Obs.on then begin
              Metrics.incr "serve.cache_hits";
              Metrics.mark "serve.cache_hit.rate"
            end;
            Log.emit ~req:rid ~event:"request.cache_hit"
              [ ("cost", Json.Number body.P.cost) ];
            Done
              {
                P.resp_id = req.P.id;
                elapsed_ms = 0.0;
                queue_ms = 0.0;
                body = Ok { body with P.cache_hit = true };
              }
        | None ->
            if !Obs.on && key <> None then begin
              Metrics.incr "serve.cache_misses";
              Metrics.mark "serve.cache_miss.rate"
            end;
            let overall =
              match req.P.deadline_ms with
              | None -> Timer.no_deadline
              | Some ms -> Timer.deadline_after (ms /. 1000.0)
            in
            let decision =
              locked t (fun () ->
                  let d = Admission.offer t.adm ~est_ms:t.latency_est_ms in
                  (match d with
                  | Admission.Admit ->
                      if !Obs.on then begin
                        Metrics.incr "serve.admitted";
                        Metrics.set_gauge "serve.queue_depth"
                          (float_of_int (Admission.snapshot t.adm).Admission.queued)
                      end
                  | Admission.Shed _ ->
                      if !Obs.on then begin
                        Metrics.incr "serve.shed";
                        Metrics.mark "serve.shed.rate"
                      end
                  | Admission.Refuse _ -> if !Obs.on then Metrics.incr "serve.refused");
                  d)
            in
            (match decision with
            | Admission.Admit -> (
                let jrid = Option.value ~default:rid replay in
                let tk = fresh_ticket req ~rid ~jrid graph key ~budget ~overall in
                (* the write-ahead step: the admitted frame must be on
                   disk before the ticket is visible to executors, or a
                   crash between visibility and durability would lose
                   the request. Replays skip it — their frame is
                   already in the current generation. *)
                let journaled =
                  match t.journal with
                  | Some j when replay = None -> (
                      try
                        Serve_journal.append_admitted j ~rid:jrid req;
                        if !Obs.on then Metrics.incr "serve.journal.appends";
                        Ok ()
                      with e -> Error (Printexc.to_string e))
                  | Some _ | None -> Ok ()
                in
                match journaled with
                | Error msg ->
                    (* durability failed: refuse rather than accept a
                       request we could silently lose. The admission
                       slot is settled so counters stay exact. *)
                    locked t (fun () ->
                        Admission.start t.adm;
                        Admission.finish t.adm;
                        Health.record t.daemon_health ~member:"journal" Health.Degraded
                          ("admit append failed: " ^ msg));
                    Log.emit ~req:rid ~event:"journal.append_failed"
                      [ ("error", Json.String msg) ];
                    Done
                      (P.error_response ~id:req.P.id P.Internal
                         ("request journal append failed: " ^ msg))
                | Ok () ->
                    (* log before the push: once the ticket is visible an
                       executor may dequeue it, and the admitted line must
                       precede the dequeued one in the request's timeline *)
                    Log.emit ~req:rid ~event:"request.admitted"
                      [
                        ("queued",
                         Json.Number
                           (float_of_int (Admission.snapshot t.adm).Admission.queued));
                      ];
                    locked t (fun () ->
                        Queue.push tk t.q;
                        Condition.signal t.cv_work);
                    Queued tk)
            | Admission.Shed { retry_after_ms } ->
                Log.emit ~req:rid ~event:"request.shed"
                  [ ("retry_after_ms", Json.Number retry_after_ms) ];
                Done
                  (P.error_response ~retry_after_ms ~id:req.P.id P.Overloaded
                     (Printf.sprintf "admission queue full (limit %d); retry after %.0fms"
                        t.cfg.queue_limit retry_after_ms))
            | Admission.Refuse st ->
                Log.emit ~req:rid ~event:"request.refused"
                  [ ("state", Json.String (Admission.state_name st)) ];
                Done
                  (P.error_response ~id:req.P.id P.Draining
                     (Printf.sprintf "daemon is %s; not accepting new requests"
                        (Admission.state_name st)))))

let offer t req = offer_aux t req ~replay:None

let submit t req = match offer t req with Queued tk -> await tk | Done r -> r

(* --- journal replay ---------------------------------------------------- *)

let recover t =
  match t.journal with
  | None -> 0
  | Some j ->
      let mark_answered jrid =
        try Serve_journal.append_completed j ~rid:jrid ()
        with _ -> () (* already logged via journal_completion's path on next write *)
      in
      let pending = Serve_journal.pending j in
      List.iter
        (fun (jrid, req) ->
          if !Obs.on then Metrics.incr "serve.journal.replayed";
          Health.record t.daemon_health ~member:("request:" ^ jrid) Health.Replayed
            "re-offered from journal after restart";
          Log.emit ~req:jrid ~event:"request.replayed" [ ("id", Json.String req.P.id) ];
          let rec replay attempts =
            match offer_aux t req ~replay:(Some jrid) with
            | Queued _ -> () (* an executor (or run_pending) completes and journals it *)
            | Done resp -> (
                match resp.P.body with
                | Error { P.code = P.Overloaded; retry_after_ms; _ }
                  when attempts > 0 && t.cfg.executors > 0 ->
                    (* executors are draining the backlog we just
                       re-queued; give them the hinted pause *)
                    Unix.sleepf (Option.value ~default:10.0 retry_after_ms /. 1000.0);
                    replay (attempts - 1)
                | Error { P.code = P.Overloaded; _ } ->
                    (* still shed: leave the frame incomplete so the
                       request replays on the next restart instead of
                       being dropped *)
                    Log.emit ~req:jrid ~event:"request.replay_shed" []
                | Ok _ | Error _ ->
                    (* answered at admission (cache hit from the warmed
                       cache, or rejected as invalid): close the frame
                       so it never replays again *)
                    mark_answered jrid)
          in
          replay 3;
          locked t (fun () -> t.replayed <- t.replayed + 1))
        pending;
      List.length pending

let run_pending t =
  let rec go n =
    let work =
      locked t (fun () ->
          if Queue.is_empty t.q then None
          else begin
            let tk = Queue.pop t.q in
            Admission.start t.adm;
            Some tk
          end)
    in
    match work with
    | None -> n
    | Some tk ->
        execute_and_fulfill t tk;
        go (n + 1)
  in
  go 0

let drain t =
  Mutex.lock t.m;
  Admission.drain t.adm;
  Condition.broadcast t.cv_work;
  if t.domains <> [] then
    while not (Admission.idle t.adm) do
      Condition.wait t.cv_idle t.m
    done;
  Mutex.unlock t.m

let stop t =
  let leftovers =
    locked t (fun () ->
        Admission.stop t.adm;
        Condition.broadcast t.cv_work;
        let rec pop acc =
          if Queue.is_empty t.q then List.rev acc else pop (Queue.pop t.q :: acc)
        in
        pop [])
  in
  List.iter
    (fun tk ->
      (* the admission counters still owe a start/finish for each
         admitted-but-never-run ticket *)
      locked t (fun () ->
          Admission.start t.adm;
          Admission.finish t.adm);
      fulfill tk
        (P.error_response ~id:tk.req.P.id P.Draining "daemon stopped before execution"))
    leftovers;
  locked t (fun () -> if Admission.idle t.adm then Condition.broadcast t.cv_idle);
  let ds = t.domains in
  t.domains <- [];
  List.iter Domain.join ds

let health t = t.daemon_health
let replayed t = locked t (fun () -> t.replayed)
let warmed t = t.warmed

type stats = {
  admission : Admission.snapshot;
  cache_hits : int;
  cache_misses : int;
  cache_size : int;
  cache_hit_rate : float;
  latency_est_ms : float;
  uptime_s : float;
}

let stats t =
  locked t (fun () ->
      let hits = Serve_cache.hits t.cache and misses = Serve_cache.misses t.cache in
      let lookups = hits + misses in
      {
        admission = Admission.snapshot t.adm;
        cache_hits = hits;
        cache_misses = misses;
        cache_size = Serve_cache.size t.cache;
        (* 0/0 lookups reads as 0%, not NaN: a fresh daemon has not
           missed anything yet either *)
        cache_hit_rate = (if lookups = 0 then 0.0 else float_of_int hits /. float_of_int lookups);
        latency_est_ms = t.latency_est_ms;
        uptime_s = Float.max 0.0 (Timer.now () -. t.created_at);
      })

let stats_json t =
  let s = stats t in
  let a = s.admission in
  Json.Object
    ([
      ("state", Json.String (Admission.state_name a.Admission.snap_state));
      ("queued", Json.Number (float_of_int a.Admission.queued));
      ("queue_limit", Json.Number (float_of_int t.cfg.queue_limit));
      ("inflight", Json.Number (float_of_int a.Admission.inflight));
      ("admitted", Json.Number (float_of_int a.Admission.admitted));
      ("shed", Json.Number (float_of_int a.Admission.shed));
      ("refused", Json.Number (float_of_int a.Admission.refused));
      ("completed", Json.Number (float_of_int a.Admission.completed));
      ("cache_hits", Json.Number (float_of_int s.cache_hits));
      ("cache_misses", Json.Number (float_of_int s.cache_misses));
      ("cache_hit_rate", Json.Number s.cache_hit_rate);
      ("cache_size", Json.Number (float_of_int s.cache_size));
      ("cache_capacity", Json.Number (float_of_int t.cfg.cache_capacity));
      ("latency_est_ms", Json.Number s.latency_est_ms);
      ("uptime_s", Json.Number s.uptime_s);
    ]
    @
    match t.journal with
    | None -> []
    | Some j ->
        [
          ( "journal",
            Json.Object
              [
                ("generation", Json.Number (float_of_int (Serve_journal.generation j)));
                ("appends", Json.Number (float_of_int (Serve_journal.appends j)));
                ( "pending_at_start",
                  Json.Number (float_of_int (List.length (Serve_journal.pending j))) );
                ("warmed", Json.Number (float_of_int t.warmed));
                ("replayed", Json.Number (float_of_int (replayed t)));
                ( "torn_files",
                  Json.Number (float_of_int (List.length (Serve_journal.torn j))) );
              ] );
        ])
