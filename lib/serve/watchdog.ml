(* Restart supervision for the daemon process itself.

   The loop is deliberately separated from process mechanics: [spawn]
   runs one child to completion and reports how it exited, and the
   clock and sleeper are injectable, so the backoff and breaker logic
   is testable with fake exits and a virtual clock. The CLI wires
   [spawn] to fork/waitpid. *)

type status = Exited of int | Signaled of int

let status_name = function
  | Exited code -> Printf.sprintf "exited:%d" code
  | Signaled sg -> Printf.sprintf "signaled:%d" sg

type policy = {
  max_restarts : int;
  window : float;
  backoff : float;
  max_backoff : float;
}

let default_policy = { max_restarts = 5; window = 60.0; backoff = 0.5; max_backoff = 10.0 }

let validate_policy p =
  let ( let* ) = Result.bind in
  let* _ = Serve_protocol.positive_int ~what:"max restarts" p.max_restarts in
  let* _ = Serve_protocol.positive_float ~what:"restart window" p.window in
  let* _ = Serve_protocol.positive_float ~what:"backoff" p.backoff in
  let* _ = Serve_protocol.positive_float ~what:"max backoff" p.max_backoff in
  if p.max_backoff < p.backoff then Error "max backoff must be >= backoff" else Ok p

type outcome = Clean_exit | Crash_loop of { crashes : int; window : float }

let supervise ?(policy = default_policy) ?health ?rng ?(sleep = Unix.sleepf)
    ?(now = Timer.now) ~name spawn =
  (match validate_policy policy with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Watchdog.supervise: " ^ msg));
  let health = match health with Some h -> h | None -> Health.create () in
  let rng = match rng with Some r -> r | None -> Rng.create 0xd09 in
  let rec go ~attempt ~crashes =
    match spawn ~attempt with
    | Exited 0 -> Clean_exit
    | status ->
        let at = now () in
        (* the breaker counts abnormal exits inside a sliding window:
           a daemon that crashes rarely restarts forever, one that
           crash-loops trips the breaker instead of spinning *)
        let crashes = at :: List.filter (fun c -> at -. c <= policy.window) crashes in
        let recent = List.length crashes in
        if recent >= policy.max_restarts then begin
          Health.record health ~member:name Health.Crash_loop
            (Printf.sprintf "%d abnormal exits within %.0fs (last %s); giving up" recent
               policy.window (status_name status));
          Log.emit ~event:"watchdog.crash_loop"
            [
              ("name", Json.String name);
              ("crashes", Json.Number (float_of_int recent));
              ("window_s", Json.Number policy.window);
              ("status", Json.String (status_name status));
            ];
          Crash_loop { crashes = recent; window = policy.window }
        end
        else begin
          let pause =
            Float.min policy.max_backoff
              (policy.backoff
              *. (2.0 ** float_of_int (recent - 1))
              *. (1.0 +. Rng.uniform rng))
          in
          Health.record health ~member:name Health.Watchdog_restart
            (Printf.sprintf "child %s; restart %d after %.3fs backoff" (status_name status)
               (attempt + 1) pause);
          Log.emit ~event:"watchdog.restart"
            [
              ("name", Json.String name);
              ("attempt", Json.Number (float_of_int (attempt + 1)));
              ("status", Json.String (status_name status));
              ("backoff_s", Json.Number pause);
            ];
          sleep pause;
          go ~attempt:(attempt + 1) ~crashes
        end
  in
  go ~attempt:0 ~crashes:[]
