(** Fingerprint-keyed solution cache.

    Repeat extraction requests are the common case for a long-lived
    daemon (the same e-graph re-submitted while a client iterates on
    everything around it), and every extractor in this repository is
    deterministic given its configuration — so a cached solution is
    not an approximation, it {e is} the answer, served in microseconds
    instead of seconds.

    The key combines the checkpoint subsystem's run fingerprint
    ({!Checkpoint.fingerprint}: graph name, sizes, seed, batch) with a
    CRC-32 over the canonical serialized e-graph text and a digest of
    the request configuration. The content CRC is what makes the cache
    safe: two graphs with the same name and shape but any single-bit
    difference — one cost nudged, one operator renamed, one edge
    rewired — produce different keys and miss.

    The cache is bounded (LRU eviction) and internally locked, so
    concurrent executor threads can share one instance. *)

type key = string

val key : fingerprint:Checkpoint.fingerprint -> graph_crc:int -> config_digest:string -> key

type 'a t

val create : capacity:int -> 'a t
(** [capacity] 0 disables the cache (every lookup misses, nothing is
    stored). @raise Invalid_argument on negative capacity. *)

val capacity : 'a t -> int
val size : 'a t -> int

val find : 'a t -> key -> 'a option
(** Refreshes the entry's recency on a hit. *)

val add : 'a t -> key -> 'a -> unit
(** Insert or refresh; evicts the least-recently-used entry when the
    cache is over capacity. No-op at capacity 0. *)

val hits : 'a t -> int
val misses : 'a t -> int
