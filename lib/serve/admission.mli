(** Admission control for the extraction daemon.

    A small, explicitly-enumerated state machine — the part of the
    daemon DESIGN.md documents as a table — kept separate from the
    engine so its transitions are unit-testable without threads,
    sockets or extractions.

    {2 States}

    - [Accepting]: new requests are admitted while the bounded queue
      has room; beyond [queue_limit] they are {e shed} with an
      [overloaded] response instead of queueing without bound.
    - [Draining]: no new requests are admitted ([draining] response);
      queued and in-flight requests run to completion. Entered on
      SIGTERM and never left.
    - [Stopped]: terminal; nothing is admitted and nothing runs.

    {2 Transitions}

    [offer] admits, sheds or refuses depending on state and queue
    depth; [start] moves one request from queued to in-flight;
    [finish] retires an in-flight request. [drain] and [stop] are
    monotone: [Accepting → Draining → Stopped].

    The type is not internally locked — the engine calls every
    transition under its own mutex. *)

type state = Accepting | Draining | Stopped

val state_name : state -> string

type decision =
  | Admit
  | Shed of { retry_after_ms : float }
      (** queue full: reject now, invite a retry once roughly one
          queue drain's worth of time has passed *)
  | Refuse of state  (** draining or stopped *)

type t

val create : queue_limit:int -> t
(** @raise Invalid_argument on [queue_limit < 1]. *)

val state : t -> state
val queue_limit : t -> int

val offer : t -> est_ms:float -> decision
(** Decide one arrival and apply the transition: [Admit] increments
    the queued count. [est_ms] is the engine's rolling per-request
    latency estimate; a shed response suggests waiting
    [(queued + inflight) · est_ms]. *)

val start : t -> unit
(** Queued → in-flight. @raise Invalid_argument when nothing is queued. *)

val finish : t -> unit
(** Retire one in-flight request. @raise Invalid_argument when nothing
    is in flight. *)

val drain : t -> unit
val stop : t -> unit

(** {1 Counters} *)

type snapshot = {
  snap_state : state;
  queued : int;
  inflight : int;
  admitted : int;  (** total ever admitted *)
  shed : int;  (** total ever shed *)
  refused : int;  (** total refused while draining/stopped *)
  completed : int;  (** total retired *)
}

val snapshot : t -> snapshot
val idle : t -> bool
(** No queued and no in-flight work. *)
