(** Durable write-ahead request journal for crash-only serving.

    The engine appends an [Admitted] frame before a request becomes
    visible to executors and a [Completed] frame when it is fulfilled;
    both are fsynced before the append returns. Opening a journal scans
    every existing generation, pairs admissions with completions, and
    exposes:

    - {!pending} — admitted-but-never-completed requests, in admission
      order: the work the previous process died holding. The engine
      replays them through the normal admission path.
    - {!warm} — (cache key, body) pairs from the newest completions:
      pre-warming the solution cache makes a replay or client retry of
      an already-answered request a cache hit, not a recomputation.

    {2 Frame format}

    Each record is framed as [magic "SMJR" · version u32 · kind u32 ·
    payload length u64 · CRC-32(payload) u32 · payload] — the same
    discipline as {!Checkpoint}'s file header, applied per record.
    Payload strings are length-prefixed; request and body payloads
    reuse the wire JSON codec.

    {2 Failure model}

    Appends are fsynced, so a crash leaves at worst a torn {e tail}:
    the file ends mid-frame. The startup scan walks frames from the
    start of each generation and stops at the first frame whose
    length, checksum or decode fails; intact frames before the tear
    are trusted, everything from it on is dropped and surfaced via
    {!torn}. Opening never fails on a torn file and a corrupted frame
    is never replayed.

    {2 Compaction}

    Every open starts a fresh generation and immediately writes the
    carried-forward state (warm completions, capped at
    [keep_completed], plus all pending admissions) into it, then
    deletes the older generations — so journal size is bounded by live
    state, not by history. *)

type t

type record =
  | Admitted of { rid : string; request : Serve_protocol.request }
  | Completed of {
      rid : string;
      key : string option;  (** solution-cache key, when the result is cacheable *)
      body : Serve_protocol.ok_body option;
    }

val open_ : ?keep_completed:int -> ?fsync:bool -> dir:string -> name:string -> unit -> t
(** Scan, compact, and open a fresh generation for appending.
    [keep_completed] (default 256) caps how many warm completions are
    carried forward; [fsync] (default [true]) may be disabled only for
    benchmark baselines. @raise Invalid_argument on a bad name or
    negative cap; I/O errors propagate. *)

val append_admitted : t -> rid:string -> Serve_protocol.request -> unit
(** Durably record that [rid] was admitted. Must happen before the
    request is visible to executors. Honors a [torn-journal] fault
    plan by truncating the append halfway (test only). *)

val append_completed :
  t -> rid:string -> ?key:string -> ?body:Serve_protocol.ok_body -> unit -> unit
(** Durably record that [rid] was answered. [key]/[body] are present
    only for cacheable successes and feed {!warm} on the next open. *)

val pending : t -> (string * Serve_protocol.request) list
(** Admitted-but-unanswered requests found at open, oldest first. *)

val warm : t -> (string * Serve_protocol.ok_body) list
(** Cache-warming pairs found at open, oldest first (so installing in
    order leaves the newest body in the cache on key collisions). *)

val torn : t -> (string * string) list
(** (file, reason) for every generation whose scan stopped early. *)

val generations_scanned : t -> int
val appends : t -> int
val generation : t -> int

val file : t -> string
(** Path of the current (append) generation. *)

val close : t -> unit

(** {1 Low-level scan} — exposed for tests and tooling. *)

val scan_string : string -> record list * (int * string) option
(** Parse a raw journal file: the records of the intact prefix, plus
    the offset and reason of the first unreadable frame if the scan
    stopped early. Never raises. *)
