(** Crash-only process supervision: restart the daemon on abnormal
    exit, with capped exponential backoff and a crash-loop breaker.

    [smoothe serve --supervise] runs the daemon under this loop: the
    parent forks a child per attempt, waits for it, and

    - a clean exit (code 0 — the normal SIGTERM drain) ends
      supervision;
    - an abnormal exit (non-zero code or a signal, e.g. [kill -9])
      triggers a restart after [backoff * 2^k] seconds with
      deterministic jitter, capped at [max_backoff] — the
      {!Supervisor.run_retrying} discipline applied to whole
      processes. The restarted daemon recovers via its request
      journal;
    - [max_restarts] abnormal exits within a sliding [window] trip the
      breaker: supervision gives up with a structured
      [crash-loop] {!Health} event instead of spinning on a
      deterministic crash (bad flags, corrupt state, missing socket
      directory).

    The process mechanics are injected ([spawn], [sleep], [now]), so
    the backoff/breaker state machine is testable with fake exits and
    a virtual clock. *)

type status = Exited of int | Signaled of int
(** How one child run ended, as reported by [spawn]. *)

val status_name : status -> string
(** ["exited:N"] / ["signaled:N"]. *)

type policy = {
  max_restarts : int;  (** breaker: abnormal exits within [window] *)
  window : float;  (** breaker window, seconds *)
  backoff : float;  (** pause before the first restart, seconds *)
  max_backoff : float;  (** backoff cap, seconds *)
}

val default_policy : policy
(** 5 crashes / 60s window, 0.5s base backoff capped at 10s. *)

val validate_policy : policy -> (policy, string) result

type outcome =
  | Clean_exit  (** the child exited 0; supervision over *)
  | Crash_loop of { crashes : int; window : float }
      (** the breaker tripped; a [crash-loop] health event was
          recorded *)

val supervise :
  ?policy:policy ->
  ?health:Health.log ->
  ?rng:Rng.t ->
  ?sleep:(float -> unit) ->
  ?now:(unit -> float) ->
  name:string ->
  (attempt:int -> status) ->
  outcome
(** [supervise ~name spawn] runs [spawn ~attempt] (attempt counts from
    0) until it reports a clean exit or the breaker trips. Every
    restart and the breaker trip are recorded on [health] and emitted
    as [watchdog.*] log events.
    @raise Invalid_argument when the policy fails {!validate_policy}. *)
