(* Write-ahead request journal: the durable half of crash-only serving.

   Every admitted request is appended as a CRC-framed [Admitted] record
   before it becomes visible to executors; fulfilment appends a
   [Completed] record. On startup the scan pairs them up: admitted
   without completed = lost in the crash, replay it; completed with a
   cached body = warm the solution cache so a replay (or a client
   retry) of an already-answered request is a cache hit, not a
   recomputation.

   The frame format mirrors Checkpoint's: magic, version, framed
   length, CRC-32 of the payload. The failure model differs, though —
   a checkpoint is written atomically (whole file or nothing), while a
   journal grows by fsynced appends, so the expected corruption is a
   torn *tail*: the file ends mid-frame where the crash interrupted the
   last append. The scan therefore walks frames from the start and
   stops at the first one that fails its length or checksum check;
   everything before it is trusted, everything from it on is dropped
   and surfaced as a [Health.Journal_torn] note. A torn tail never
   prevents startup and a corrupted frame is never replayed. *)

module P = Serve_protocol

let magic = "SMJR"
let format_version = 1
let header_len = 24 (* magic 4 + version 4 + kind 4 + length 8 + crc 4 *)

type record =
  | Admitted of { rid : string; request : P.request }
  | Completed of { rid : string; key : string option; body : P.ok_body option }

(* ------------------------------------------------------------- encode *)

let w_int buf n = Buffer.add_int64_le buf (Int64.of_int n)

let w_str buf s =
  w_int buf (String.length s);
  Buffer.add_string buf s

(* Bodies ride inside a full response frame so the journal reuses the
   wire codec instead of inventing a second ok-body serialisation. *)
let body_to_string ~rid body =
  Json.to_string
    (P.response_to_json { P.resp_id = rid; elapsed_ms = 0.0; queue_ms = 0.0; body = Ok body })

let encode_payload = function
  | Admitted { rid; request } ->
      let buf = Buffer.create 256 in
      w_str buf rid;
      w_str buf (Json.to_string (P.request_to_json request));
      Buffer.contents buf
  | Completed { rid; key; body } ->
      let buf = Buffer.create 256 in
      w_str buf rid;
      w_str buf (Option.value ~default:"" key);
      w_str buf (match body with None -> "" | Some b -> body_to_string ~rid b);
      Buffer.contents buf

let kind_tag = function Admitted _ -> 1 | Completed _ -> 2

let frame record =
  let payload = encode_payload record in
  let buf = Buffer.create (String.length payload + header_len) in
  Buffer.add_string buf magic;
  Buffer.add_int32_le buf (Int32.of_int format_version);
  Buffer.add_int32_le buf (Int32.of_int (kind_tag record));
  Buffer.add_int64_le buf (Int64.of_int (String.length payload));
  Buffer.add_int32_le buf (Int32.of_int (Checksum.crc32 payload));
  Buffer.add_string buf payload;
  Buffer.contents buf

(* ------------------------------------------------------------- decode *)

exception Bad of string

type reader = { src : string; mutable pos : int }

let need r n =
  if n < 0 || r.pos + n > String.length r.src then raise (Bad "truncated payload")

let r_int r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.src r.pos) in
  r.pos <- r.pos + 8;
  v

let r_str r =
  let n = r_int r in
  if n < 0 || n > String.length r.src - r.pos then raise (Bad "implausible string length");
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let parse_json what s =
  match Json.parse s with
  | j -> j
  | exception Json.Parse_error msg -> raise (Bad (Printf.sprintf "%s: %s" what msg))

let decode_record kind payload =
  let r = { src = payload; pos = 0 } in
  let record =
    match kind with
    | 1 ->
        let rid = r_str r in
        let req_json = parse_json "admitted request" (r_str r) in
        let request =
          match P.request_of_json req_json with
          | Ok req -> req
          | Error msg -> raise (Bad ("admitted request: " ^ msg))
        in
        Admitted { rid; request }
    | 2 ->
        let rid = r_str r in
        let key = match r_str r with "" -> None | k -> Some k in
        let body =
          match r_str r with
          | "" -> None
          | s -> (
              match P.response_of_json (parse_json "completed body" s) with
              | Ok { P.body = Ok b; _ } -> Some b
              | Ok { P.body = Error _; _ } -> raise (Bad "completed body is an error frame")
              | Error msg -> raise (Bad ("completed body: " ^ msg)))
        in
        Completed { rid; key; body }
    | k -> raise (Bad (Printf.sprintf "unknown record kind %d" k))
  in
  if r.pos <> String.length payload then raise (Bad "trailing bytes in payload");
  record

(* Scan a whole journal file. Returns the records of the intact prefix
   plus, when the scan stopped early, the offset and reason of the
   first unreadable frame (the torn tail). Never raises. *)
let scan_string s =
  let len = String.length s in
  let records = ref [] in
  let rec go off =
    if off = len then None
    else if len - off < header_len then Some (off, "truncated frame header")
    else if String.sub s off 4 <> magic then Some (off, "bad frame magic")
    else
      let version = Int32.to_int (String.get_int32_le s (off + 4)) in
      if version <> format_version then
        Some (off, Printf.sprintf "unsupported journal version %d" version)
      else
        let kind = Int32.to_int (String.get_int32_le s (off + 8)) in
        let plen64 = String.get_int64_le s (off + 12) in
        (* compare as full 64-bit values so a corrupted top bit cannot
           alias a plausible length *)
        if
          Int64.compare plen64 0L < 0
          || Int64.compare plen64 (Int64.of_int (len - off - header_len)) > 0
        then Some (off, "frame length overruns the file (torn tail)")
        else
          let plen = Int64.to_int plen64 in
          let stored = Int32.to_int (String.get_int32_le s (off + 20)) land 0xFFFFFFFF in
          let actual = Checksum.crc32 ~off:(off + header_len) ~len:plen s in
          if stored <> actual then Some (off, "frame checksum mismatch")
          else
            match decode_record kind (String.sub s (off + header_len) plen) with
            | record ->
                records := record :: !records;
                go (off + header_len + plen)
            | exception Bad msg -> Some (off, msg)
  in
  let torn = go 0 in
  (List.rev !records, torn)

(* -------------------------------------------------------- generations *)

let path ~dir ~name gen = Filename.concat dir (Printf.sprintf "%s.%08d.jrnl" name gen)

let generations ~dir ~name =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      let prefix = name ^ "." and suffix = ".jrnl" in
      Array.to_list entries
      |> List.filter_map (fun f ->
             if
               String.length f = String.length prefix + 8 + String.length suffix
               && String.starts_with ~prefix f
               && String.ends_with ~suffix f
             then int_of_string_opt (String.sub f (String.length prefix) 8)
             else None)
      |> List.sort compare

(* --------------------------------------------------------------- open *)

type t = {
  dir : string;
  name : string;
  gen : int;
  appender : Fsio.appender;
  m : Mutex.t;
  mutable appends : int;
  pending : (string * P.request) list;
  warm : (string * P.ok_body) list;
  torn : (string * string) list;
  scanned : int;
}

let raw_append t data =
  Mutex.protect t.m (fun () ->
      (* a torn-journal fault truncates this one append halfway,
         simulating power loss mid-write *)
      let data =
        if Fault_plan.torn_journal () then String.sub data 0 (String.length data / 2)
        else data
      in
      Fsio.append t.appender data;
      t.appends <- t.appends + 1)

let open_ ?(keep_completed = 256) ?(fsync = true) ~dir ~name () =
  if name = "" || String.contains name '/' then
    invalid_arg (Printf.sprintf "Serve_journal.open_: bad journal name %S" name);
  if keep_completed < 0 then
    invalid_arg "Serve_journal.open_: keep_completed must be >= 0";
  Fsio.mkdir_p dir;
  let gens = generations ~dir ~name in
  (* Fold oldest -> newest so later records supersede earlier ones:
     the newest completion for a rid wins, and re-journaled admitted
     frames (compaction carry-forward) collapse onto one entry. *)
  let admitted : (string, P.request) Hashtbl.t = Hashtbl.create 64 in
  let completed : (string, string option * P.ok_body option) Hashtbl.t =
    Hashtbl.create 64
  in
  let admit_order = ref [] (* newest first; rids, deduped *) in
  let complete_order = ref [] (* newest first; rids, with duplicates *) in
  let torn = ref [] in
  List.iter
    (fun gen ->
      let p = path ~dir ~name gen in
      match Fsio.read_file p with
      | exception Sys_error msg -> torn := (p, msg) :: !torn
      | content ->
          let records, tail = scan_string content in
          (match tail with
          | Some (off, msg) ->
              torn := (p, Printf.sprintf "%s at byte %d" msg off) :: !torn
          | None -> ());
          List.iter
            (function
              | Admitted { rid; request } ->
                  if not (Hashtbl.mem admitted rid) then admit_order := rid :: !admit_order;
                  Hashtbl.replace admitted rid request
              | Completed { rid; key; body } ->
                  Hashtbl.replace completed rid (key, body);
                  complete_order := rid :: !complete_order)
            records)
    gens;
  let pending =
    List.rev !admit_order
    |> List.filter_map (fun rid ->
           if Hashtbl.mem completed rid then None
           else Some (rid, Hashtbl.find admitted rid))
  in
  (* Completions worth carrying forward: those with a cache key and a
     body (anything else can't warm the cache). Newest first, capped,
     then flipped back to oldest-first so warming the cache in order
     leaves the newest result installed on key collisions. *)
  let carry =
    let seen = Hashtbl.create 64 in
    List.filter_map
      (fun rid ->
        if Hashtbl.mem seen rid then None
        else begin
          Hashtbl.add seen rid ();
          match Hashtbl.find_opt completed rid with
          | Some (Some key, Some body) -> Some (rid, key, body)
          | _ -> None
        end)
      !complete_order
    |> List.filteri (fun i _ -> i < keep_completed)
    |> List.rev
  in
  let gen = 1 + List.fold_left max 0 gens in
  let appender = Fsio.open_append ~fsync (path ~dir ~name gen) in
  let t =
    {
      dir;
      name;
      gen;
      appender;
      m = Mutex.create ();
      appends = 0;
      pending;
      warm = List.map (fun (_, key, body) -> (key, body)) carry;
      torn = List.rev !torn;
      scanned = List.length gens;
    }
  in
  (* Compaction: make the fresh generation self-contained — carry
     forward the warm completions and the still-pending admitted frames
     in one append — then drop the old generations. If we crash before
     the delete, the scan above is idempotent; if we crash after, the
     new generation alone reconstructs the same state. *)
  if gens <> [] || carry <> [] then begin
    let buf = Buffer.create 4096 in
    List.iter
      (fun (rid, key, body) ->
        Buffer.add_string buf (frame (Completed { rid; key = Some key; body = Some body })))
      carry;
    List.iter
      (fun (rid, request) -> Buffer.add_string buf (frame (Admitted { rid; request })))
      pending;
    if Buffer.length buf > 0 then Fsio.append t.appender (Buffer.contents buf);
    List.iter
      (fun g -> try Sys.remove (path ~dir ~name g) with Sys_error _ -> ())
      gens
  end;
  t

let append_admitted t ~rid request = raw_append t (frame (Admitted { rid; request }))

let append_completed t ~rid ?key ?body () = raw_append t (frame (Completed { rid; key; body }))

let pending t = t.pending
let warm t = t.warm
let torn t = t.torn
let generations_scanned t = t.scanned
let appends t = Mutex.protect t.m (fun () -> t.appends)
let generation t = t.gen
let file t = Fsio.append_path t.appender
let close t = Fsio.close_append t.appender
