module P = Serve_protocol

type t = {
  engine : Serve_engine.t;
  path : string;
  listen_fd : Unix.file_descr;
  stop : bool Atomic.t;
  conns : (Unix.file_descr, unit) Hashtbl.t;  (** open connection fds *)
  conns_m : Mutex.t;
  mutable handlers : Thread.t list;
}

let create ~engine ~path =
  (if Sys.file_exists path then
     match (Unix.stat path).Unix.st_kind with
     | Unix.S_SOCK -> Unix.unlink path
     | _ -> failwith (Printf.sprintf "refusing to replace non-socket file %S" path));
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  {
    engine;
    path;
    listen_fd = fd;
    stop = Atomic.make false;
    conns = Hashtbl.create 16;
    conns_m = Mutex.create ();
    handlers = [];
  }

let track t fd =
  Mutex.lock t.conns_m;
  Hashtbl.replace t.conns fd ();
  Mutex.unlock t.conns_m

let untrack t fd =
  Mutex.lock t.conns_m;
  Hashtbl.remove t.conns fd;
  Mutex.unlock t.conns_m

let send_line oc json =
  output_string oc (Json.to_string json);
  output_char oc '\n';
  flush oc

(* One frame -> one response. Control frames short-circuit; anything
   else goes through the full admission path. *)
let answer engine line =
  match Json.parse line with
  | exception Json.Parse_error msg ->
      P.response_to_json (P.error_response ~id:"" P.Bad_request ("unparsable frame: " ^ msg))
  | json -> (
      match Json.member "op" json with
      | Json.String "ping" ->
          Json.Object [ ("status", Json.String "ok"); ("op", Json.String "ping") ]
      | Json.String "stats" ->
          Json.Object
            [
              ("status", Json.String "ok");
              ("op", Json.String "stats");
              ("stats", Serve_engine.stats_json engine);
            ]
      | Json.String "telemetry" ->
          (* the monitoring scrape: admission stats plus the whole
             metrics registry in one consistent frame. [format = prom]
             additionally inlines the Prometheus text exposition. *)
          let base =
            [
              ("status", Json.String "ok");
              ("op", Json.String "telemetry");
              ("stats", Serve_engine.stats_json engine);
              ("metrics", Metrics.snapshot ());
            ]
          in
          let extra =
            match Json.member "format" json with
            | Json.String "prom" -> [ ("prom", Json.String (Prom.render ())) ]
            | _ -> []
          in
          Json.Object (base @ extra)
      | Json.String other ->
          P.response_to_json
            (P.error_response ~id:"" P.Bad_request (Printf.sprintf "unknown op %S" other))
      | _ -> (
          match P.request_of_json json with
          | Error msg -> P.response_to_json (P.error_response ~id:"" P.Bad_request msg)
          | Ok req -> P.response_to_json (Serve_engine.submit engine req)))

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line when String.trim line = "" -> loop ()
    | line ->
        (match send_line oc (answer t.engine line) with
        | () -> loop ()
        | exception Sys_error _ -> ())
  in
  loop ();
  untrack t fd;
  try Unix.close fd with Unix.Unix_error _ -> ()

let shutdown t =
  if not (Atomic.exchange t.stop true) then begin
    (* wake the accept loop with a throwaway connection: closing the
       listening fd from another thread does not reliably unblock a
       thread parked in [accept], but an arriving connection always
       does. When called from a signal handler on the accepting thread
       itself, the signal has already interrupted [accept] (EINTR) and
       the loop re-checks the stop flag — the dial is then merely a
       queued connection the drain path never accepts. *)
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> ()
    | fd ->
        (try Unix.connect fd (Unix.ADDR_UNIX t.path) with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
  end

let run t =
  let rec accept_loop () =
    if not (Atomic.get t.stop) then
      match Unix.accept t.listen_fd with
      | fd, _ ->
          track t fd;
          t.handlers <- Thread.create (fun () -> handle_connection t fd) () :: t.handlers;
          accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ ->
          (* listener closed by shutdown (or fatally broken): drain *)
          ()
  in
  accept_loop ();
  Atomic.set t.stop true;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (* finish everything already admitted; refuse the rest *)
  Serve_engine.drain t.engine;
  (* give handlers a beat to flush final responses, then force idle
     connections (clients that never closed) off so join cannot hang *)
  Thread.delay 0.2;
  Mutex.lock t.conns_m;
  let lingering = Hashtbl.fold (fun fd () acc -> fd :: acc) t.conns [] in
  Mutex.unlock t.conns_m;
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    lingering;
  List.iter Thread.join t.handlers;
  Serve_engine.stop t.engine;
  try Unix.unlink t.path with Unix.Unix_error _ -> ()

(* --- client ------------------------------------------------------------ *)

let call_many ~path frames =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> ()
      | exception Unix.Unix_error (err, _, _) ->
          failwith
            (Printf.sprintf "cannot connect to %S: %s" path (Unix.error_message err)));
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      List.map
        (fun frame ->
          send_line oc frame;
          match input_line ic with
          | exception End_of_file -> failwith "connection closed before a response arrived"
          | line -> (
              match Json.parse line with
              | j -> j
              | exception Json.Parse_error msg ->
                  failwith ("unparsable response frame: " ^ msg)))
        frames)

let call ~path frame =
  match call_many ~path [ frame ] with
  | [ resp ] -> resp
  | _ -> assert false
