module P = Serve_protocol

let default_read_timeout = 30.0
let default_max_frame = 8 * 1024 * 1024

type t = {
  engine : Serve_engine.t;
  path : string;
  read_timeout : float;  (** per-frame read deadline, seconds *)
  max_frame : int;  (** request-line length cap, bytes *)
  listen_fd : Unix.file_descr;
  stop : bool Atomic.t;
  conns : (Unix.file_descr, unit) Hashtbl.t;  (** open connection fds *)
  conns_m : Mutex.t;
  mutable handlers : Thread.t list;
}

let create ?(read_timeout = default_read_timeout) ?(max_frame = default_max_frame) ~engine
    ~path () =
  (match P.positive_float ~what:"read timeout" read_timeout with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Serve_socket.create: " ^ msg));
  (match P.positive_int ~what:"max frame length" max_frame with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Serve_socket.create: " ^ msg));
  (if Sys.file_exists path then
     match (Unix.stat path).Unix.st_kind with
     | Unix.S_SOCK -> Unix.unlink path
     | _ -> failwith (Printf.sprintf "refusing to replace non-socket file %S" path));
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  {
    engine;
    path;
    read_timeout;
    max_frame;
    listen_fd = fd;
    stop = Atomic.make false;
    conns = Hashtbl.create 16;
    conns_m = Mutex.create ();
    handlers = [];
  }

let track t fd =
  Mutex.lock t.conns_m;
  Hashtbl.replace t.conns fd ();
  Mutex.unlock t.conns_m

let untrack t fd =
  Mutex.lock t.conns_m;
  Hashtbl.remove t.conns fd;
  Mutex.unlock t.conns_m

(* --- hardened frame I/O ------------------------------------------------ *)

(* A connection reader with a carry buffer: pipelined clients may land
   several frames (or a frame fragment) in one packet, so leftover
   bytes must survive across [read_frame] calls. *)
type conn_reader = { fd : Unix.file_descr; mutable carry : string }

type frame_result = Frame of string | Eof | Timed_out | Too_long

let rec select_read fd timeout =
  match Unix.select [ fd ] [] [] timeout with
  | r, _, _ -> r <> []
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> select_read fd timeout

let rec select_write fd timeout =
  match Unix.select [] [ fd ] [] timeout with
  | _, w, _ -> w <> []
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> select_write fd timeout

(* Read one [\n]-terminated frame with a deadline and a length cap.
   The deadline covers the whole frame, not just the first byte, so a
   slow-loris client dribbling one byte per poll still times out; the
   cap bounds memory per connection and is checked before the newline
   arrives, so an endless unterminated line cannot grow the carry
   unboundedly. *)
let read_frame r ~timeout ~max_frame =
  let deadline = Timer.deadline_after timeout in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match String.index_opt r.carry '\n' with
    | Some i when i > max_frame -> Too_long
    | Some i ->
        let line = String.sub r.carry 0 i in
        r.carry <- String.sub r.carry (i + 1) (String.length r.carry - i - 1);
        Frame line
    | None when String.length r.carry > max_frame -> Too_long
    | None ->
        let remaining = Timer.remaining deadline in
        if remaining <= 0.0 then Timed_out
        else if not (select_read r.fd (Float.min remaining 1.0)) then go ()
        else begin
          match Unix.read r.fd chunk 0 (Bytes.length chunk) with
          | 0 -> Eof (* any partial carry is an unterminated frame; drop it *)
          | n ->
              r.carry <- r.carry ^ Bytes.sub_string chunk 0 n;
              go ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
            ->
              go ()
          | exception Unix.Unix_error _ -> Eof
        end
  in
  go ()

(* Partial-write-safe sender: loops over [Unix.write] until the whole
   frame is out (a response larger than the socket buffer arrives in
   pieces), bounded by its own deadline so a client that stops reading
   cannot pin the handler. Returns [false] when the frame could not be
   delivered. *)
let write_frame fd ~timeout json =
  let s = Json.to_string json ^ "\n" in
  let len = String.length s in
  let deadline = Timer.deadline_after timeout in
  let rec go off =
    if off >= len then true
    else
      let remaining = Timer.remaining deadline in
      if remaining <= 0.0 then false
      else if not (select_write fd (Float.min remaining 1.0)) then go off
      else
        match Unix.write_substring fd s off (len - off) with
        | n -> go (off + n)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            go off
        | exception Unix.Unix_error _ -> false
  in
  go 0

(* Deliver a final error frame before closing: closing a socket with
   unread bytes in its receive buffer makes the kernel send RST, which
   destroys the just-written response on the client side (a flooding
   client would see a reset instead of the [frame_too_long] verdict).
   Shut down our send side and drain briefly until the client hangs up
   or a bounded deadline passes. *)
let lingering_close fd ~timeout =
  (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  let deadline = Timer.deadline_after (Float.min timeout 1.0) in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    let remaining = Timer.remaining deadline in
    if remaining > 0.0 && select_read fd remaining then
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | _ -> drain ()
      | exception Unix.Unix_error _ -> ()
  in
  drain ()

(* One frame -> one response. Control frames short-circuit; anything
   else goes through the full admission path. *)
let answer engine line =
  match Json.parse line with
  | exception Json.Parse_error msg ->
      P.response_to_json (P.error_response ~id:"" P.Bad_request ("unparsable frame: " ^ msg))
  | json -> (
      match Json.member "op" json with
      | Json.String "ping" ->
          Json.Object [ ("status", Json.String "ok"); ("op", Json.String "ping") ]
      | Json.String "stats" ->
          Json.Object
            [
              ("status", Json.String "ok");
              ("op", Json.String "stats");
              ("stats", Serve_engine.stats_json engine);
            ]
      | Json.String "telemetry" ->
          (* the monitoring scrape: admission stats plus the whole
             metrics registry in one consistent frame. [format = prom]
             additionally inlines the Prometheus text exposition. *)
          let base =
            [
              ("status", Json.String "ok");
              ("op", Json.String "telemetry");
              ("stats", Serve_engine.stats_json engine);
              ("metrics", Metrics.snapshot ());
            ]
          in
          let extra =
            match Json.member "format" json with
            | Json.String "prom" -> [ ("prom", Json.String (Prom.render ())) ]
            | _ -> []
          in
          Json.Object (base @ extra)
      | Json.String other ->
          P.response_to_json
            (P.error_response ~id:"" P.Bad_request (Printf.sprintf "unknown op %S" other))
      | _ -> (
          match P.request_of_json json with
          | Error msg -> P.response_to_json (P.error_response ~id:"" P.Bad_request msg)
          | Ok req -> P.response_to_json (Serve_engine.submit engine req)))

let handle_connection t fd =
  let r = { fd; carry = "" } in
  let send json = write_frame fd ~timeout:t.read_timeout json in
  let rec loop () =
    match read_frame r ~timeout:t.read_timeout ~max_frame:t.max_frame with
    | Eof -> ()
    | Timed_out ->
        (* answer once with a structured error, then hang up: a
           slow-loris client does not get to pin this thread *)
        if !Obs.on then Metrics.incr "serve.conn.read_timeouts";
        Log.emit ~event:"conn.read_timeout"
          [ ("timeout_ms", Json.Number (t.read_timeout *. 1000.0)) ];
        if
          send
            (P.response_to_json
               (P.error_response ~id:"" P.Timed_out
                  (Printf.sprintf "no complete frame within the %.0fms read deadline"
                     (t.read_timeout *. 1000.0))))
        then lingering_close fd ~timeout:t.read_timeout
    | Too_long ->
        if !Obs.on then Metrics.incr "serve.conn.frames_too_long";
        Log.emit ~event:"conn.frame_too_long"
          [ ("max_frame", Json.Number (float_of_int t.max_frame)) ];
        if
          send
            (P.response_to_json
               (P.error_response ~id:"" P.Frame_too_long
                  (Printf.sprintf "frame exceeds the %d-byte length cap" t.max_frame)))
        then lingering_close fd ~timeout:t.read_timeout
    | Frame line when String.trim line = "" -> loop ()
    | Frame line -> if send (answer t.engine line) then loop ()
  in
  loop ();
  untrack t fd;
  try Unix.close fd with Unix.Unix_error _ -> ()

let shutdown t =
  if not (Atomic.exchange t.stop true) then begin
    (* wake the accept loop with a throwaway connection: closing the
       listening fd from another thread does not reliably unblock a
       thread parked in [accept], but an arriving connection always
       does. When called from a signal handler on the accepting thread
       itself, the signal has already interrupted [accept] (EINTR) and
       the loop re-checks the stop flag — the dial is then merely a
       queued connection the drain path never accepts. *)
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> ()
    | fd ->
        (try Unix.connect fd (Unix.ADDR_UNIX t.path) with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
  end

let run t =
  let rec accept_loop () =
    if not (Atomic.get t.stop) then
      match Unix.accept t.listen_fd with
      | fd, _ ->
          track t fd;
          t.handlers <- Thread.create (fun () -> handle_connection t fd) () :: t.handlers;
          accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ ->
          (* listener closed by shutdown (or fatally broken): drain *)
          ()
  in
  accept_loop ();
  Atomic.set t.stop true;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (* finish everything already admitted; refuse the rest *)
  Serve_engine.drain t.engine;
  (* give handlers a beat to flush final responses, then force idle
     connections (clients that never closed) off so join cannot hang *)
  Thread.delay 0.2;
  Mutex.lock t.conns_m;
  let lingering = Hashtbl.fold (fun fd () acc -> fd :: acc) t.conns [] in
  Mutex.unlock t.conns_m;
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    lingering;
  List.iter Thread.join t.handlers;
  Serve_engine.stop t.engine;
  try Unix.unlink t.path with Unix.Unix_error _ -> ()

(* --- client ------------------------------------------------------------ *)

let send_line oc json =
  output_string oc (Json.to_string json);
  output_char oc '\n';
  flush oc

(* An overloaded daemon sheds with a [retry_after_ms] hint; honoring it
   client-side turns a thundering retry herd into a paced one. The
   backoff discipline matches {!Supervisor.run_retrying}: the hinted
   pause doubles per attempt with deterministic jitter from [rng],
   capped so a wildly pessimistic hint cannot stall a client for
   minutes. *)
let max_retry_pause = 5.0

let retry_pause ~rng ~attempt hint_ms =
  let base = Float.max 0.001 (hint_ms /. 1000.0) in
  Float.min max_retry_pause
    (base *. (2.0 ** float_of_int attempt) *. (1.0 +. Rng.uniform rng))

let call_many ?(retries = 0) ?rng ~path frames =
  if retries < 0 then invalid_arg "Serve_socket.call_many: retries must be >= 0";
  let rng = match rng with Some r -> r | None -> Rng.create 0x7e57 in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> ()
      | exception Unix.Unix_error (err, _, _) ->
          failwith
            (Printf.sprintf "cannot connect to %S: %s" path (Unix.error_message err)));
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let exchange frame =
        send_line oc frame;
        match input_line ic with
        | exception End_of_file -> failwith "connection closed before a response arrived"
        | line -> (
            match Json.parse line with
            | j -> j
            | exception Json.Parse_error msg ->
                failwith ("unparsable response frame: " ^ msg))
      in
      let rec attempt frame n =
        let resp = exchange frame in
        match (Json.member "code" resp, Json.member "retry_after_ms" resp) with
        | Json.String "overloaded", Json.Number hint_ms when n < retries ->
            Unix.sleepf (retry_pause ~rng ~attempt:n hint_ms);
            attempt frame (n + 1)
        | _ -> resp
      in
      List.map (fun frame -> attempt frame 0) frames)

let call ?retries ?rng ~path frame =
  match call_many ?retries ?rng ~path [ frame ] with
  | [ resp ] -> resp
  | _ -> assert false
