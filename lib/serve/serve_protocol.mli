(** Wire protocol of the extraction service.

    One request or response per line, each a single JSON object —
    line-framed JSON over a Unix socket. The codec is strict on the
    way in ({!request_of_json} validates every field and reports a
    one-line reason instead of admitting garbage into the runtime) and
    total on the way out (every response, including every failure
    mode, serialises to a well-formed frame).

    {2 Error codes}

    - [bad_request] — the frame failed validation; never admitted.
    - [overloaded] — the admission queue is full; the response carries
      [retry_after_ms], the client should back off and retry.
    - [draining] — the daemon is shutting down and refuses new work.
    - [deadline_expired] — the request's overall deadline passed before
      (or while) it could run.
    - [crashed] — the supervised run failed on every retry attempt;
      the daemon itself survives.
    - [internal] — an unexpected server-side failure.
    - [timeout] — the connection sat idle (or dribbled bytes) past the
      per-connection read deadline; the server answers once and closes.
    - [frame_too_long] — a request line exceeded the frame-length cap;
      the server answers once and closes. *)

type method_ = Smoothe | Greedy | Greedy_dag

val method_name : method_ -> string
val method_of_name : string -> method_ option

type source =
  | Inline of string  (** a native-text serialized e-graph ({!Egraph.Serial}) *)
  | Instance of string  (** a bundled registry instance name *)

type request = {
  id : string;
  source : source;
  method_ : method_;
  budget : float option;  (** compute seconds; [None] = daemon default *)
  deadline_ms : float option;
      (** overall deadline including queue wait; [None] = none *)
  seed : int;
  batch : int;
  iters : int;
  lambda_ : float;
  costs : float array option;  (** per-node cost override *)
  fault_plan : string;  (** test-only deterministic faults; [""] = none *)
  use_cache : bool;
}

val default_request : request
(** [Instance ""] source; fill in at least {!field-source}. *)

type error_code =
  | Bad_request
  | Overloaded
  | Draining
  | Deadline_expired
  | Crashed
  | Internal
  | Timed_out  (** per-connection read deadline expired mid-frame *)
  | Frame_too_long  (** request line exceeded the frame-length cap *)

val error_code_name : error_code -> string
val error_code_of_name : string -> error_code option

type ok_body = {
  cost : float;
  valid : bool;
  choices : (int * int) list;  (** selected (e-class, e-node) pairs *)
  iterations : int;
  cache_hit : bool;
  health : string;  (** {!Health.summary} of the request-scoped log *)
}

type error_body = {
  code : error_code;
  message : string;
  retry_after_ms : float option;  (** only on [Overloaded] *)
}

type response = {
  resp_id : string;
  elapsed_ms : float;  (** execution wall-clock *)
  queue_ms : float;  (** admission-to-dequeue wait *)
  body : (ok_body, error_body) result;
}

val error_response :
  ?queue_ms:float -> ?retry_after_ms:float -> id:string -> error_code -> string -> response

(** {1 Validation}

    Shared by the JSON decoder and the CLI flag parsers, so the serve
    and request subcommands reject bad budgets/deadlines/limits with
    the same one-line messages the daemon would. *)

val positive_float : what:string -> float -> (float, string) result
(** Rejects zero, negative, NaN and infinite values. *)

val positive_int : what:string -> int -> (int, string) result
(** Rejects zero and negative values. *)

(** {1 Codec} *)

val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, string) result
val response_to_json : response -> Json.t

val response_of_json : Json.t -> (response, string) result
(** Used by the client and the test harness; tolerates unknown extra
    fields but rejects frames without a parseable status. *)
