(** The extraction daemon's core: bounded admission, supervised
    execution, caching and graceful drain — everything except the
    socket.

    The engine is deliberately separable from its transport so every
    robustness property is testable deterministically in-process:

    - {b Admission control}: arrivals pass through {!Admission} under
      one mutex. Beyond the queue limit they are shed with a
      structured [overloaded] response carrying a retry hint, never
      queued without bound.
    - {b Supervised execution}: each admitted request runs under
      {!Supervisor.run_retrying} with a per-request {!Health} log, so
      an injected crash, a NaN blow-up or a deadline overrun in one
      request becomes a structured response — the daemon never dies
      with a request.
    - {b Deadlines}: a request's optional overall deadline
      ([deadline_ms], armed at admission) covers queue wait; a request
      that expires while queued is answered [deadline_expired] without
      running, and one that finishes past the deadline is answered
      [deadline_expired] too — it is a response deadline, the client
      has already given up. The compute budget is additionally capped
      by whatever remains of the overall deadline at dequeue.
    - {b Caching}: results of fault-free runs are stored in a
      {!Serve_cache} keyed by the checkpoint fingerprint plus a
      content CRC; a repeat request is answered at admission time in
      microseconds with a bit-identical solution.
    - {b Drain}: {!drain} refuses new work and completes everything
      already admitted; {!stop} additionally fails still-queued
      tickets with structured errors and joins the executors.
    - {b Durability} (optional): with a {!Serve_journal}, every
      admission is journaled before the request is visible to an
      executor and every fulfilment is journaled on completion, making
      the daemon crash-only — {!recover} replays what a dead process
      was holding, and the warmed cache turns replays of
      already-answered requests into hits. Drained-but-unserved
      tickets ({!stop}'s structured failures) are deliberately {e not}
      marked completed, so they too replay on the next start.

    Execution modes: [executors = 0] is {e manual} — {!offer} only
    admits, {!run_pending} executes on the calling thread; this is the
    deterministic mode the tests and the bench drive. [executors > 0]
    spawns that many executor domains which pull from the queue;
    kernels inside a request additionally fan over the shared
    {!Pool} ([--jobs]). Per-request fault plans install the ambient
    {!Fault_plan} and are therefore only accepted when at most one
    executor exists. *)

type config = {
  queue_limit : int;  (** max requests waiting (excluding in-flight) *)
  executors : int;  (** executor domains; 0 = manual ({!run_pending}) *)
  default_budget : float;  (** compute seconds when a request names none *)
  max_budget : float;  (** per-request compute ceiling *)
  retry_attempts : int;  (** {!Supervisor.run_retrying} attempts per request *)
  cache_capacity : int;  (** solution-cache entries; 0 disables *)
  preflight : bool;  (** run the e-graph lint gate inside SmoothE requests *)
  plan : Smoothe_config.plan_mode;
      (** static-plan replay mode applied to every SmoothE request the
          executors run (gate failures fall back to interpretation
          per request) *)
}

val default_config : config

val validate_config : config -> (config, string) result
(** One-line reason on the first invalid field (non-positive or
    non-finite budgets, non-positive queue limit / attempts, negative
    executors or cache capacity); the CLI front end funnels its flag
    values through this before the daemon starts. *)

type t
type ticket

type offer_outcome =
  | Queued of ticket  (** admitted; execution pending *)
  | Done of Serve_protocol.response
      (** answered at admission time: cache hit, shed, refused or
          invalid *)

val create : ?config:config -> ?journal:Serve_journal.t -> unit -> t
(** @raise Invalid_argument when the config fails {!validate_config}.
    With [journal], the solution cache is pre-warmed from the
    journal's carried-forward completions and torn-frame notes are
    surfaced as [journal-torn] health events; the engine takes over
    appending but the caller keeps ownership (and must
    {!Serve_journal.close} it after {!stop}). *)

val recover : t -> int
(** Replay every admitted-but-unanswered journaled request through the
    normal admission path; returns how many were re-offered. Replays
    keep their original journal rid so their completions close the
    original frames; a replay answered at admission (warm cache hit,
    or now-invalid request) is marked completed immediately, and one
    shed by a full queue stays journaled for the next restart. Call
    once, after {!create}; a no-op without a journal. *)

val offer : t -> Serve_protocol.request -> offer_outcome
(** Parse, validate, consult the cache, and pass admission — all
    synchronous. Never blocks on execution. *)

val await : ticket -> Serve_protocol.response
(** Block until the ticket's request has executed. *)

val peek : ticket -> Serve_protocol.response option

val submit : t -> Serve_protocol.request -> Serve_protocol.response
(** [offer] then [await]: the blocking call a connection handler makes. *)

val run_pending : t -> int
(** Manual mode: execute queued requests on the calling thread until
    the queue is empty; returns how many ran. *)

val drain : t -> unit
(** Refuse new requests and complete the admitted ones. With
    executors, blocks until the queue and all in-flight requests have
    settled; in manual mode it only flips the admission state (the
    caller still owns execution via {!run_pending}). Idempotent. *)

val stop : t -> unit
(** Terminal: refuse everything, answer still-queued tickets with a
    structured [draining] error, and join the executor domains.
    In-flight requests finish first. Idempotent. *)

val health : t -> Health.log
(** The daemon-wide supervision log: every request-scoped log is
    merged in on completion, so [--health-report] covers the whole
    service lifetime. *)

val replayed : t -> int
(** Journal replays performed by {!recover} in this process. *)

val warmed : t -> int
(** Cache entries restored from the journal at {!create}. *)

type stats = {
  admission : Admission.snapshot;
  cache_hits : int;
  cache_misses : int;
  cache_size : int;
  cache_hit_rate : float;  (** hits / lookups; 0.0 before any lookup *)
  latency_est_ms : float;  (** rolling mean used for retry-after hints *)
  uptime_s : float;  (** seconds since {!create} *)
}

val stats : t -> stats

val stats_json : t -> Json.t
(** {!stats} plus the static [queue_limit] and [cache_capacity] (and,
    when a journal is attached, a [journal] sub-object with
    generation / appends / pending / warmed / replayed / torn counts),
    as the [stats] control op replies. *)
