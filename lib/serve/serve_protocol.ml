type method_ = Smoothe | Greedy | Greedy_dag

let method_name = function
  | Smoothe -> "smoothe"
  | Greedy -> "greedy"
  | Greedy_dag -> "greedy-dag"

let method_of_name = function
  | "smoothe" -> Some Smoothe
  | "greedy" -> Some Greedy
  | "greedy-dag" -> Some Greedy_dag
  | _ -> None

type source = Inline of string | Instance of string

type request = {
  id : string;
  source : source;
  method_ : method_;
  budget : float option;
  deadline_ms : float option;
  seed : int;
  batch : int;
  iters : int;
  lambda_ : float;
  costs : float array option;
  fault_plan : string;
  use_cache : bool;
}

let default_request =
  {
    id = "";
    source = Instance "";
    method_ = Smoothe;
    budget = None;
    deadline_ms = None;
    seed = 7;
    batch = 8;
    iters = 60;
    lambda_ = 100.0;
    costs = None;
    fault_plan = "";
    use_cache = true;
  }

type error_code =
  | Bad_request
  | Overloaded
  | Draining
  | Deadline_expired
  | Crashed
  | Internal
  | Timed_out
  | Frame_too_long

let error_code_name = function
  | Bad_request -> "bad_request"
  | Overloaded -> "overloaded"
  | Draining -> "draining"
  | Deadline_expired -> "deadline_expired"
  | Crashed -> "crashed"
  | Internal -> "internal"
  | Timed_out -> "timeout"
  | Frame_too_long -> "frame_too_long"

let error_code_of_name = function
  | "bad_request" -> Some Bad_request
  | "overloaded" -> Some Overloaded
  | "draining" -> Some Draining
  | "deadline_expired" -> Some Deadline_expired
  | "crashed" -> Some Crashed
  | "internal" -> Some Internal
  | "timeout" -> Some Timed_out
  | "frame_too_long" -> Some Frame_too_long
  | _ -> None

type ok_body = {
  cost : float;
  valid : bool;
  choices : (int * int) list;
  iterations : int;
  cache_hit : bool;
  health : string;
}

type error_body = { code : error_code; message : string; retry_after_ms : float option }

type response = {
  resp_id : string;
  elapsed_ms : float;
  queue_ms : float;
  body : (ok_body, error_body) result;
}

let error_response ?(queue_ms = 0.0) ?retry_after_ms ~id code message =
  {
    resp_id = id;
    elapsed_ms = 0.0;
    queue_ms;
    body = Error { code; message; retry_after_ms };
  }

(* --- validation -------------------------------------------------------- *)

let positive_float ~what v =
  if Float.is_nan v then Error (Printf.sprintf "%s must be a number, got nan" what)
  else if not (Float.is_finite v) then
    Error (Printf.sprintf "%s must be finite, got %g" what v)
  else if v <= 0.0 then Error (Printf.sprintf "%s must be positive, got %g" what v)
  else Ok v

let positive_int ~what v =
  if v <= 0 then Error (Printf.sprintf "%s must be positive, got %d" what v) else Ok v

(* --- codec ------------------------------------------------------------- *)

let request_to_json r =
  let base =
    [
      ("id", Json.String r.id);
      (match r.source with
      | Inline text -> ("egraph", Json.String text)
      | Instance name -> ("instance", Json.String name));
      ("method", Json.String (method_name r.method_));
      ("seed", Json.Number (float_of_int r.seed));
      ("batch", Json.Number (float_of_int r.batch));
      ("iters", Json.Number (float_of_int r.iters));
      ("lambda", Json.Number r.lambda_);
      ("cache", Json.Bool r.use_cache);
    ]
  in
  let opt name v f = match v with None -> [] | Some x -> [ (name, f x) ] in
  let base = base @ opt "budget" r.budget (fun b -> Json.Number b) in
  let base = base @ opt "deadline_ms" r.deadline_ms (fun d -> Json.Number d) in
  let base =
    base
    @ opt "costs" r.costs (fun cs ->
          Json.Array (Array.to_list (Array.map (fun c -> Json.Number c) cs)))
  in
  let base =
    if r.fault_plan = "" then base else base @ [ ("fault_plan", Json.String r.fault_plan) ]
  in
  Json.Object base

let ( let* ) = Result.bind

let field_string j name =
  match Json.member name j with
  | Json.Null -> Ok None
  | Json.String s -> Ok (Some s)
  | _ -> Error (Printf.sprintf "field %S must be a string" name)

let field_number j name =
  match Json.member name j with
  | Json.Null -> Ok None
  | Json.Number n -> Ok (Some n)
  | _ -> Error (Printf.sprintf "field %S must be a number" name)

let field_bool j name =
  match Json.member name j with
  | Json.Null -> Ok None
  | Json.Bool b -> Ok (Some b)
  | _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let field_int j name ~default =
  let* n = field_number j name in
  match n with
  | None -> Ok default
  | Some n ->
      if Float.is_finite n && Float.of_int (Float.to_int n) = n then Ok (Float.to_int n)
      else Error (Printf.sprintf "field %S must be an integer" name)

let request_of_json j =
  match j with
  | Json.Object _ ->
      let* id = field_string j "id" in
      let id = Option.value ~default:"" id in
      let* inline = field_string j "egraph" in
      let* instance = field_string j "instance" in
      let* source =
        match (inline, instance) with
        | Some text, None -> Ok (Inline text)
        | None, Some name when name <> "" -> Ok (Instance name)
        | None, Some _ -> Error "field \"instance\" must name a bundled instance"
        | Some _, Some _ -> Error "give either \"egraph\" or \"instance\", not both"
        | None, None -> Error "request needs an \"egraph\" (inline text) or \"instance\" field"
      in
      let* meth = field_string j "method" in
      let* method_ =
        match meth with
        | None -> Ok Smoothe
        | Some name -> (
            match method_of_name name with
            | Some m -> Ok m
            | None -> Error (Printf.sprintf "unknown method %S" name))
      in
      let* budget = field_number j "budget" in
      let* budget =
        match budget with
        | None -> Ok None
        | Some b ->
            let* b = positive_float ~what:"budget" b in
            Ok (Some b)
      in
      let* deadline_ms = field_number j "deadline_ms" in
      let* deadline_ms =
        match deadline_ms with
        | None -> Ok None
        | Some d ->
            let* d = positive_float ~what:"deadline_ms" d in
            Ok (Some d)
      in
      let* seed = field_int j "seed" ~default:default_request.seed in
      let* batch = field_int j "batch" ~default:default_request.batch in
      let* batch = positive_int ~what:"batch" batch in
      let* iters = field_int j "iters" ~default:default_request.iters in
      let* iters = positive_int ~what:"iters" iters in
      let* lambda_ = field_number j "lambda" in
      let lambda_ = Option.value ~default:default_request.lambda_ lambda_ in
      let* lambda_ =
        if Float.is_finite lambda_ && lambda_ >= 0.0 then Ok lambda_
        else Error (Printf.sprintf "lambda must be finite and non-negative, got %g" lambda_)
      in
      let* costs =
        match Json.member "costs" j with
        | Json.Null -> Ok None
        | Json.Array items ->
            let* cs =
              List.fold_left
                (fun acc item ->
                  let* acc = acc in
                  match item with
                  | Json.Number n when Float.is_finite n -> Ok (n :: acc)
                  | Json.Number n ->
                      Error (Printf.sprintf "cost override %g is not finite" n)
                  | _ -> Error "field \"costs\" must be an array of numbers")
                (Ok []) items
            in
            Ok (Some (Array.of_list (List.rev cs)))
        | _ -> Error "field \"costs\" must be an array of numbers"
      in
      let* fault_plan = field_string j "fault_plan" in
      let fault_plan = Option.value ~default:"" fault_plan in
      let* () =
        if fault_plan = "" then Ok ()
        else
          match Fault_plan.of_string fault_plan with
          | _ -> Ok ()
          | exception Invalid_argument msg -> Error msg
      in
      let* use_cache = field_bool j "cache" in
      let use_cache = Option.value ~default:true use_cache in
      Ok
        {
          id;
          source;
          method_;
          budget;
          deadline_ms;
          seed;
          batch;
          iters;
          lambda_;
          costs;
          fault_plan;
          use_cache;
        }
  | _ -> Error "request frame must be a JSON object"

let response_to_json r =
  let common =
    [
      ("id", Json.String r.resp_id);
      ("elapsed_ms", Json.Number r.elapsed_ms);
      ("queue_ms", Json.Number r.queue_ms);
    ]
  in
  match r.body with
  | Ok ok ->
      Json.Object
        (("status", Json.String "ok") :: common
        @ [
            ("cost", Json.Number ok.cost);
            ("valid", Json.Bool ok.valid);
            ("iterations", Json.Number (float_of_int ok.iterations));
            ("cache_hit", Json.Bool ok.cache_hit);
            ("health", Json.String ok.health);
            ( "choices",
              Json.Array
                (List.map
                   (fun (c, n) ->
                     Json.Array
                       [ Json.Number (float_of_int c); Json.Number (float_of_int n) ])
                   ok.choices) );
          ])
  | Error err ->
      Json.Object
        (("status", Json.String "error") :: common
        @ [
            ("code", Json.String (error_code_name err.code));
            ("message", Json.String err.message);
          ]
        @
        match err.retry_after_ms with
        | None -> []
        | Some ms -> [ ("retry_after_ms", Json.Number ms) ])

let response_of_json j =
  match j with
  | Json.Object _ -> (
      let* status = field_string j "status" in
      let* id = field_string j "id" in
      let resp_id = Option.value ~default:"" id in
      let* elapsed_ms = field_number j "elapsed_ms" in
      let elapsed_ms = Option.value ~default:0.0 elapsed_ms in
      let* queue_ms = field_number j "queue_ms" in
      let queue_ms = Option.value ~default:0.0 queue_ms in
      match status with
      | Some "ok" ->
          let* cost = field_number j "cost" in
          let* valid = field_bool j "valid" in
          let* iterations = field_int j "iterations" ~default:0 in
          let* cache_hit = field_bool j "cache_hit" in
          let* health = field_string j "health" in
          let* choices =
            match Json.member "choices" j with
            | Json.Null -> Ok []
            | Json.Array items ->
                List.fold_left
                  (fun acc item ->
                    let* acc = acc in
                    match item with
                    | Json.Array [ Json.Number c; Json.Number n ] ->
                        Ok ((Float.to_int c, Float.to_int n) :: acc)
                    | _ -> Error "choices entries must be [class, node] pairs")
                  (Ok []) items
                |> Result.map List.rev
            | _ -> Error "field \"choices\" must be an array"
          in
          Ok
            {
              resp_id;
              elapsed_ms;
              queue_ms;
              body =
                Ok
                  {
                    cost = Option.value ~default:infinity cost;
                    valid = Option.value ~default:false valid;
                    choices;
                    iterations;
                    cache_hit = Option.value ~default:false cache_hit;
                    health = Option.value ~default:"" health;
                  };
            }
      | Some "error" ->
          let* code_name = field_string j "code" in
          let* code =
            match Option.bind code_name error_code_of_name with
            | Some c -> Ok c
            | None -> Error "error response carries no known \"code\""
          in
          let* message = field_string j "message" in
          let* retry_after_ms = field_number j "retry_after_ms" in
          Ok
            {
              resp_id;
              elapsed_ms;
              queue_ms;
              body =
                Error
                  { code; message = Option.value ~default:"" message; retry_after_ms };
            }
      | Some other -> Error (Printf.sprintf "unknown response status %S" other)
      | None -> Error "response frame has no \"status\" field")
  | _ -> Error "response frame must be a JSON object"
