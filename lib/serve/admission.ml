type state = Accepting | Draining | Stopped

let state_name = function
  | Accepting -> "accepting"
  | Draining -> "draining"
  | Stopped -> "stopped"

type decision = Admit | Shed of { retry_after_ms : float } | Refuse of state

type t = {
  limit : int;
  mutable st : state;
  mutable queued : int;
  mutable inflight : int;
  mutable admitted : int;
  mutable shed : int;
  mutable refused : int;
  mutable completed : int;
}

let create ~queue_limit =
  if queue_limit < 1 then invalid_arg "Admission.create: queue_limit must be >= 1";
  {
    limit = queue_limit;
    st = Accepting;
    queued = 0;
    inflight = 0;
    admitted = 0;
    shed = 0;
    refused = 0;
    completed = 0;
  }

let state t = t.st
let queue_limit t = t.limit

let offer t ~est_ms =
  match t.st with
  | Draining | Stopped ->
      t.refused <- t.refused + 1;
      Refuse t.st
  | Accepting ->
      if t.queued >= t.limit then begin
        t.shed <- t.shed + 1;
        let backlog = float_of_int (t.queued + t.inflight) in
        Shed { retry_after_ms = Float.max 1.0 (backlog *. Float.max 1.0 est_ms) }
      end
      else begin
        t.queued <- t.queued + 1;
        t.admitted <- t.admitted + 1;
        Admit
      end

let start t =
  if t.queued < 1 then invalid_arg "Admission.start: nothing queued";
  t.queued <- t.queued - 1;
  t.inflight <- t.inflight + 1

let finish t =
  if t.inflight < 1 then invalid_arg "Admission.finish: nothing in flight";
  t.inflight <- t.inflight - 1;
  t.completed <- t.completed + 1

let drain t = if t.st = Accepting then t.st <- Draining
let stop t = t.st <- Stopped

type snapshot = {
  snap_state : state;
  queued : int;
  inflight : int;
  admitted : int;
  shed : int;
  refused : int;
  completed : int;
}

let snapshot t =
  {
    snap_state = t.st;
    queued = t.queued;
    inflight = t.inflight;
    admitted = t.admitted;
    shed = t.shed;
    refused = t.refused;
    completed = t.completed;
  }

let idle (t : t) = t.queued = 0 && t.inflight = 0
