(** Unix-socket transport for the extraction daemon.

    Line-framed JSON: each connection carries a sequence of request
    frames, one JSON object per [\n]-terminated line, answered in
    order by one response frame each (see {!Serve_protocol}). Two
    control frames bypass extraction: [{"op":"ping"}] answers
    immediately (liveness), [{"op":"stats"}] returns the engine's
    admission/cache counters, and [{"op":"telemetry"}] additionally
    snapshots the whole metrics registry (histogram quantiles, meter
    rates); with [{"op":"telemetry","format":"prom"}] the reply also
    carries the Prometheus text exposition under ["prom"]. [smoothe
    top] polls the telemetry op.

    The server owns an accept loop on the calling thread and one
    handler thread per connection; handlers block in
    {!Serve_engine.submit}, so concurrency and backpressure are
    entirely the engine's admission policy. {!shutdown} is async-safe
    (a signal handler may call it): it flips a flag and closes the
    listening socket, which makes {!run} fall out of [accept], drain
    the engine — in-flight and queued requests finish, new ones are
    refused with [draining] — and close lingering connections.

    {2 Hardening}

    The transport does not trust clients to be fast or well-formed:
    each frame read carries a deadline ([read_timeout]) covering the
    whole line — a slow-loris client dribbling bytes is answered with
    a structured [timeout] error and disconnected — and a length cap
    ([max_frame]) answered with [frame_too_long]; responses are
    written partial-write-safely under the same deadline, so a client
    that stops reading cannot pin a handler thread either. *)

type t

val create :
  ?read_timeout:float -> ?max_frame:int -> engine:Serve_engine.t -> path:string -> unit -> t
(** Bind and listen on Unix-domain socket [path], replacing a stale
    socket file left by a previous daemon. [read_timeout] (seconds,
    default 30) bounds each frame read and each response write;
    [max_frame] (bytes, default 8 MiB) caps the request line.
    @raise Invalid_argument on a non-positive timeout or cap.
    @raise Unix.Unix_error when binding fails (e.g. the path's
    directory does not exist or the name is too long). *)

val run : t -> unit
(** Serve until {!shutdown} is called, then drain and return. *)

val shutdown : t -> unit
(** Idempotent; callable from a signal handler. *)

(** {1 Client side} *)

val call : ?retries:int -> ?rng:Rng.t -> path:string -> Json.t -> Json.t
(** Connect, send one frame, read one response frame, close.
    [retries] (default 0) re-sends a frame answered [overloaded],
    honoring the daemon's [retry_after_ms] hint with exponential
    backoff and deterministic jitter from [rng] (the
    {!Supervisor.run_retrying} discipline, capped at 5s per pause);
    the shed response is returned as-is once retries are exhausted.
    @raise Failure on connection errors, EOF before a response, or an
    unparsable response line.
    @raise Invalid_argument on negative [retries]. *)

val call_many : ?retries:int -> ?rng:Rng.t -> path:string -> Json.t list -> Json.t list
(** One connection, several frames pipelined in order; [retries]
    applies per frame. *)
