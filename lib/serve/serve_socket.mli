(** Unix-socket transport for the extraction daemon.

    Line-framed JSON: each connection carries a sequence of request
    frames, one JSON object per [\n]-terminated line, answered in
    order by one response frame each (see {!Serve_protocol}). Two
    control frames bypass extraction: [{"op":"ping"}] answers
    immediately (liveness), [{"op":"stats"}] returns the engine's
    admission/cache counters, and [{"op":"telemetry"}] additionally
    snapshots the whole metrics registry (histogram quantiles, meter
    rates); with [{"op":"telemetry","format":"prom"}] the reply also
    carries the Prometheus text exposition under ["prom"]. [smoothe
    top] polls the telemetry op.

    The server owns an accept loop on the calling thread and one
    handler thread per connection; handlers block in
    {!Serve_engine.submit}, so concurrency and backpressure are
    entirely the engine's admission policy. {!shutdown} is async-safe
    (a signal handler may call it): it flips a flag and closes the
    listening socket, which makes {!run} fall out of [accept], drain
    the engine — in-flight and queued requests finish, new ones are
    refused with [draining] — and close lingering connections. *)

type t

val create : engine:Serve_engine.t -> path:string -> t
(** Bind and listen on Unix-domain socket [path], replacing a stale
    socket file left by a previous daemon.
    @raise Unix.Unix_error when binding fails (e.g. the path's
    directory does not exist or the name is too long). *)

val run : t -> unit
(** Serve until {!shutdown} is called, then drain and return. *)

val shutdown : t -> unit
(** Idempotent; callable from a signal handler. *)

(** {1 Client side} *)

val call : path:string -> Json.t -> Json.t
(** Connect, send one frame, read one response frame, close.
    @raise Failure on connection errors, EOF before a response, or an
    unparsable response line. *)

val call_many : path:string -> Json.t list -> Json.t list
(** One connection, several frames pipelined in order. *)
