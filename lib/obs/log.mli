(** Structured JSON-lines logging with request-scoped correlation.

    Each {!emit} produces one JSON object — ["ts"] (from {!Timer.now},
    so injected clock skew is visible), ["event"] (a dotted lowercase
    name, e.g. [request.admitted]), an optional ["req"] request id, and
    any caller-supplied fields — serialised as exactly one line, so a
    log file is greppable by request id and parseable line by line.

    The serve daemon mints a request id at admission and stamps it on
    every line for that request (and on the request's trace span and
    health events), so one request can be followed across
    queue → retry → cache → solution; see DESIGN.md ("Observability")
    for the request-id lifecycle and field taxonomy.

    The sink is independent of the {!Obs} metrics/trace switch and
    defaults to {!Silent}, where {!emit} is a single dereference — an
    un-logged run allocates nothing and behaves bit-identically to an
    un-instrumented one. *)

type sink =
  | Silent  (** the default: {!emit} is a no-op *)
  | Memory  (** collect records in-process (tests, [records]/[lines]) *)
  | Channel of out_channel
      (** write each record as one flushed line (the daemon's
          [--log FILE]); the channel is owned by the caller *)

val sink : unit -> sink
val set_sink : sink -> unit

val emit : ?req:string -> event:string -> (string * Json.t) list -> unit
(** Thread-safe; field order is preserved ([ts], [event], [req], then
    the caller's fields). *)

val records : unit -> Json.t list
(** What the Memory sink collected, oldest first. *)

val lines : unit -> string list
(** {!records} rendered as JSON lines (no trailing newline). *)

val reset : unit -> unit
(** Drop the Memory sink's records. *)

val with_memory : (unit -> 'a) -> 'a
(** Run a thunk against a fresh Memory sink, restoring the previous
    sink afterwards (also on raise). The collected records survive for
    inspection via {!records}. *)
