(** Prometheus text-format exposition of the metrics registry.

    {!render} walks one atomic {!Metrics.dump} and emits text
    exposition format 0.0.4: counters and gauges verbatim, histograms
    as cumulative [_bucket{le="..."}] series (occupied bounds only)
    plus [_sum]/[_count], meters as a [_total] counter and a
    [window]-labelled [_rate] gauge. Metric names are prefixed with
    [smoothe_] and dots become underscores ([serve.request_ms] →
    [smoothe_serve_request_ms]).

    The serve daemon answers the [telemetry] control op with this text
    when asked for [format = "prom"], and [--metrics FILE
    --metrics-format prom] writes it at drain — either way a standard
    Prometheus scraper (or [promtool check metrics]) can consume the
    output directly. *)

val render : ?now:float -> unit -> string
(** [now] overrides the meter-window clock, as in {!Metrics.dump}. *)
