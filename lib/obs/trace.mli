(** Hierarchical wall-clock spans and instant events.

    Spans nest lexically ([with_span] inside [with_span]); each
    completed span records its name, category, depth, the full
    semicolon-joined stack path, its start time and duration (all
    read from {!Timer.now}, so injected clock skew is visible in the
    trace), and a list of string attributes. Instant events mark a
    point in time — {!Health} re-emits every health event as one, so
    faults, NaN recoveries and OOM derates show up on the timeline in
    context.

    Everything is a no-op while {!Obs} is disabled. The store is
    global and domain-safe: pushes are serialised by a lock, and the
    open-span stack is per-domain ({!Domain.DLS}), so spans recorded
    on a pool worker nest among themselves rather than grafting onto
    whatever the submitting domain has open. A pool task runs under
    {!capturing}, which collects its events in a domain-local buffer;
    the pool {!absorb}s the buffers in task order at the join, so an
    enabled sink sees the same event sequence at any pool size.

    Two export formats:
    - Chrome [trace_event] JSON (an object with a ["traceEvents"]
      array of ["ph":"X"] complete events and ["ph":"i"] instants),
      loadable in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto};
    - folded-stack lines (["a;b;c <self-time-in-us>"]) consumable by
      [flamegraph.pl] and speedscope. *)

type span = {
  name : string;
  cat : string;
  path : string;  (** semicolon-joined ancestor names, ending in [name] *)
  depth : int;  (** 0 for a root span *)
  ts : float;  (** start, absolute seconds ({!Timer.now}) *)
  dur : float;  (** seconds *)
  args : (string * string) list;
}

type instant = {
  i_name : string;
  i_cat : string;
  i_ts : float;
  i_args : (string * string) list;
}

type event = Span of span | Instant of instant

val with_span : ?cat:string -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span. The span is recorded when the thunk
    returns or raises; nesting depth is restored either way. With the
    sink disabled this is exactly [f ()]. *)

val instant : ?cat:string -> ?attrs:(string * string) list -> string -> unit

val reset : unit -> unit
(** Drop all recorded events. Open spans (on the stack right now) are
    unaffected: they record against the fresh store when they close. *)

val open_depth : unit -> int
(** Number of spans currently open on {e this domain} — 0 whenever no
    [with_span] is on the call stack, however the enclosing code
    exited. *)

(** {1 Per-domain capture (the pool's merge-on-join hook)} *)

val capturing : (unit -> 'a) -> 'a * event list
(** [capturing f] runs [f] with a fresh domain-local event buffer and
    an empty span stack, restoring both afterwards (also on raise),
    and returns the events [f] recorded, in completion order. Events
    of a nested [capturing] that were {!absorb}ed land in the
    enclosing buffer. On an exception the buffered events are
    dropped with the task. *)

val absorb : event list -> unit
(** Append previously captured events to the current sink: the global
    store, or the enclosing capture buffer if one is installed. *)

(** {1 Inspection} *)

val events : unit -> event list
(** In completion order (children before parents, instants at their
    emission point). *)

val spans : unit -> span list
val instants : unit -> instant list

val span_totals : unit -> (string * int * float) list
(** Per span {e name}: (name, count, total seconds), sorted by name —
    the per-phase breakdown the bench harness prints. *)

val phase_totals : unit -> (string * int * float) list
(** Per span {e path} (the full stack), same aggregation. *)

val span_totals_of : event list -> (string * int * float) list
(** {!span_totals} over an explicit event list — e.g. the capture of a
    single pool task — instead of the global store. *)

(** {1 Export} *)

val to_chrome : unit -> Json.t
(** Chrome trace_event JSON. Timestamps are microseconds rebased to
    the earliest recorded event. *)

val to_folded : unit -> string
(** Folded-stack lines with integer microsecond self-times. *)

val write_file : string -> unit
(** Write the trace: a path ending in [.folded] gets folded stacks,
    anything else Chrome JSON. The write is atomic (tmp + rename, via
    {!Fsio.write_atomic}) so a crash mid-export never leaves a
    truncated trace behind. *)
