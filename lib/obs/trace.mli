(** Hierarchical wall-clock spans and instant events.

    Spans nest lexically ([with_span] inside [with_span]); each
    completed span records its name, category, depth, the full
    semicolon-joined stack path, its start time and duration (all
    read from {!Timer.now}, so injected clock skew is visible in the
    trace), and a list of string attributes. Instant events mark a
    point in time — {!Health} re-emits every health event as one, so
    faults, NaN recoveries and OOM derates show up on the timeline in
    context.

    Everything is a no-op while {!Obs} is disabled. The store is
    global and single-threaded, matching the rest of the repo.

    Two export formats:
    - Chrome [trace_event] JSON (an object with a ["traceEvents"]
      array of ["ph":"X"] complete events and ["ph":"i"] instants),
      loadable in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto};
    - folded-stack lines (["a;b;c <self-time-in-us>"]) consumable by
      [flamegraph.pl] and speedscope. *)

type span = {
  name : string;
  cat : string;
  path : string;  (** semicolon-joined ancestor names, ending in [name] *)
  depth : int;  (** 0 for a root span *)
  ts : float;  (** start, absolute seconds ({!Timer.now}) *)
  dur : float;  (** seconds *)
  args : (string * string) list;
}

type instant = {
  i_name : string;
  i_cat : string;
  i_ts : float;
  i_args : (string * string) list;
}

type event = Span of span | Instant of instant

val with_span : ?cat:string -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span. The span is recorded when the thunk
    returns or raises; nesting depth is restored either way. With the
    sink disabled this is exactly [f ()]. *)

val instant : ?cat:string -> ?attrs:(string * string) list -> string -> unit

val reset : unit -> unit
(** Drop all recorded events. Open spans (on the stack right now) are
    unaffected: they record against the fresh store when they close. *)

val open_depth : unit -> int
(** Number of spans currently open — 0 whenever no [with_span] is on
    the call stack, however the enclosing code exited. *)

(** {1 Inspection} *)

val events : unit -> event list
(** In completion order (children before parents, instants at their
    emission point). *)

val spans : unit -> span list
val instants : unit -> instant list

val span_totals : unit -> (string * int * float) list
(** Per span {e name}: (name, count, total seconds), sorted by name —
    the per-phase breakdown the bench harness prints. *)

val phase_totals : unit -> (string * int * float) list
(** Per span {e path} (the full stack), same aggregation. *)

(** {1 Export} *)

val to_chrome : unit -> Json.t
(** Chrome trace_event JSON. Timestamps are microseconds rebased to
    the earliest recorded event. *)

val to_folded : unit -> string
(** Folded-stack lines with integer microsecond self-times. *)

val write_file : string -> unit
(** Write the trace: a path ending in [.folded] gets folded stacks,
    anything else Chrome JSON. *)
