type span = {
  name : string;
  cat : string;
  path : string;
  depth : int;
  ts : float;
  dur : float;
  args : (string * string) list;
}

type instant = {
  i_name : string;
  i_cat : string;
  i_ts : float;
  i_args : (string * string) list;
}

type event = Span of span | Instant of instant

let store : event Vec.t = Vec.create ()
let store_lock = Mutex.create ()

(* The open-span stack, innermost first, one per domain (a worker's
   spans must not graft themselves onto whatever the main domain has
   open). Kept as names only: the path of a closing span is rebuilt
   from it, so an exception that unwinds through with_span cannot
   leave a stale frame behind (Fun.protect pops it). *)
let stack_key : string list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

(* Per-domain capture buffer. [None] (the default) routes events to
   the global store under its lock; [Some buf] — installed by
   {!capturing} for the duration of a pool task — collects them
   domain-locally so concurrent tasks don't interleave. The pool
   absorbs the buffers in deterministic task order at the join. *)
let capture_key : event Vec.t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let emit e =
  match !(Domain.DLS.get capture_key) with
  | Some buf -> Vec.push buf e
  | None -> Mutex.protect store_lock (fun () -> Vec.push store e)

let open_depth () = List.length !(Domain.DLS.get stack_key)

let reset () = Mutex.protect store_lock (fun () -> Vec.clear store)

let with_span ?(cat = "") ?(attrs = []) name f =
  if not !Obs.on then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let ts = Timer.now () in
    stack := name :: !stack;
    let depth = List.length !stack - 1 in
    let path = String.concat ";" (List.rev !stack) in
    let close () =
      let dur = Timer.now () -. ts in
      (match !stack with _ :: tl -> stack := tl | [] -> ());
      emit (Span { name; cat; path; depth; ts; dur; args = attrs })
    in
    Fun.protect ~finally:close f
  end

let instant ?(cat = "") ?(attrs = []) name =
  if !Obs.on then
    emit (Instant { i_name = name; i_cat = cat; i_ts = Timer.now (); i_args = attrs })

let capturing f =
  let capture = Domain.DLS.get capture_key in
  let stack = Domain.DLS.get stack_key in
  let saved_capture = !capture and saved_stack = !stack in
  let buf = Vec.create () in
  capture := Some buf;
  stack := [];
  let restore () =
    capture := saved_capture;
    stack := saved_stack
  in
  match f () with
  | v ->
      restore ();
      (v, Vec.to_list buf)
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      restore ();
      Printexc.raise_with_backtrace e bt

let absorb evs = List.iter emit evs

let events () = Mutex.protect store_lock (fun () -> Vec.to_list store)

let spans () =
  List.filter_map (function Span s -> Some s | Instant _ -> None) (events ())

let instants () =
  List.filter_map (function Instant i -> Some i | Span _ -> None) (events ())

let totals_by key span_list =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let k = key s in
      let count, total = Option.value ~default:(0, 0.0) (Hashtbl.find_opt tbl k) in
      Hashtbl.replace tbl k (count + 1, total +. s.dur))
    span_list;
  Hashtbl.fold (fun k (c, t) acc -> (k, c, t) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let span_totals () = totals_by (fun s -> s.name) (spans ())
let phase_totals () = totals_by (fun s -> s.path) (spans ())

let span_totals_of evs =
  totals_by (fun s -> s.name) (List.filter_map (function Span s -> Some s | Instant _ -> None) evs)

(* ------------------------------------------------------------- export *)

let epoch () =
  List.fold_left
    (fun acc e ->
      match e with Span s -> Float.min acc s.ts | Instant i -> Float.min acc i.i_ts)
    infinity (events ())

let us epoch t = (t -. epoch) *. 1e6

let args_json args = Json.Object (List.map (fun (k, v) -> k, Json.String v) args)

let to_chrome () =
  let e0 = epoch () in
  let e0 = if Float.is_finite e0 then e0 else 0.0 in
  let sorted =
    List.sort
      (fun a b ->
        let ts = function Span s -> s.ts | Instant i -> i.i_ts in
        compare (ts a) (ts b))
      (events ())
  in
  let entry = function
    | Span s ->
        Json.Object
          [
            "name", Json.String s.name;
            "cat", Json.String (if s.cat = "" then "span" else s.cat);
            "ph", Json.String "X";
            "ts", Json.Number (us e0 s.ts);
            "dur", Json.Number (us 0.0 s.dur);
            "pid", Json.Number 1.0;
            "tid", Json.Number 1.0;
            "args", args_json s.args;
          ]
    | Instant i ->
        Json.Object
          [
            "name", Json.String i.i_name;
            "cat", Json.String (if i.i_cat = "" then "instant" else i.i_cat);
            "ph", Json.String "i";
            "s", Json.String "g";
            "ts", Json.Number (us e0 i.i_ts);
            "pid", Json.Number 1.0;
            "tid", Json.Number 1.0;
            "args", args_json i.i_args;
          ]
  in
  Json.Object
    [
      "traceEvents", Json.Array (List.map entry sorted);
      "displayTimeUnit", Json.String "ms";
    ]

(* Folded stacks: per unique path, the *self* time (inclusive time of
   the path minus the inclusive time of its direct children), so the
   flamegraph's widths add up correctly. *)
let to_folded () =
  let inclusive = Hashtbl.create 32 in
  let child_sum = Hashtbl.create 32 in
  let bump tbl k v =
    Hashtbl.replace tbl k (v +. Option.value ~default:0.0 (Hashtbl.find_opt tbl k))
  in
  List.iter
    (fun s ->
      bump inclusive s.path s.dur;
      if s.depth > 0 then
        match String.rindex_opt s.path ';' with
        | Some i -> bump child_sum (String.sub s.path 0 i) s.dur
        | None -> ())
    (spans ());
  Hashtbl.fold
    (fun path total acc ->
      let self = total -. Option.value ~default:0.0 (Hashtbl.find_opt child_sum path) in
      let usec = int_of_float (Float.max 0.0 (self *. 1e6)) in
      (path, usec) :: acc)
    inclusive []
  |> List.sort compare
  |> List.map (fun (path, usec) -> Printf.sprintf "%s %d" path usec)
  |> String.concat "\n"
  |> fun body -> if body = "" then body else body ^ "\n"

let write_file path =
  let body =
    if Filename.check_suffix path ".folded" then to_folded ()
    else Json.to_string (to_chrome ())
  in
  Fsio.write_atomic ~path body
