type sink = Disabled | Memory

let on = ref false

let sink () = if !on then Memory else Disabled
let set_sink = function Disabled -> on := false | Memory -> on := true

let enabled () = !on
let enable () = on := true
let disable () = on := false

let with_enabled f =
  let saved = !on in
  on := true;
  Fun.protect ~finally:(fun () -> on := saved) f
