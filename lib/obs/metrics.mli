(** A process-wide registry of named counters, gauges, histograms and
    meters.

    Updates ({!incr}, {!set_gauge}, {!observe}, {!mark}) are no-ops
    while {!Obs} is disabled, so instrumented hot paths cost one
    branch. Reads and {!snapshot} always work on whatever was recorded.

    The registry is domain-safe: every operation — including
    {!reset}, {!names} and {!snapshot} — is one atomic registry
    transaction, so a reset racing an increment can never observe a
    half-registered cell, and concurrent increments of the same
    counter never lose updates. Code that wants counters isolated
    from other pool tasks (the bench sweeps) runs under {!scoped}.

    Metric names are dotted lowercase strings grouped by subsystem,
    e.g. [lp.pivots], [tensor.matexp_squarings], [smoothe.loss]; the
    full taxonomy is documented in DESIGN.md ("Observability"). *)

(** {1 Bucketed histograms}

    Histograms carry fixed log-scale buckets alongside the exact
    summary fields: {!bucket_count} buckets whose upper bounds grow by
    [sqrt 2] per step from [1e-3] (see {!bucket_bound}), plus one
    overflow bucket. {!quantile} walks the cumulative counts, so
    p50/p95/p99 estimates cost 65 ints of memory per histogram and are
    off by at most the width of the bucket holding the exact value.

    Non-finite observations are {e quarantined}: a NaN or infinite
    value increments [non_finite] and leaves [count], [sum], the
    min/max envelope and the buckets untouched. The derived mean
    ([sum /. count], 0 when [count] is 0) is therefore always finite —
    an all-NaN histogram reports [count = 0], [mean = 0], not a
    silently-[null] JSON field. *)

val bucket_count : int
(** Number of bounded buckets (the overflow bucket is extra). *)

val bucket_bound : int -> float
(** Upper bound of bucket [i], for [0 <= i < bucket_count]. Bucket [i]
    holds values in [(bucket_bound (i-1), bucket_bound i]]; bucket 0
    also absorbs everything [<= bucket_bound 0] (including negatives). *)

type histogram = {
  count : int;  (** finite observations *)
  non_finite : int;  (** NaN/infinite observations, quarantined *)
  sum : float;  (** sum of the finite observations *)
  min_v : float;
  max_v : float;
  last : float;  (** most recent finite observation *)
  buckets : int array;  (** length [bucket_count + 1]; last = overflow *)
}

val mean : histogram -> float
(** [sum /. count]; 0 when the histogram saw no finite observation.
    Finite by construction (see the quarantine note above). *)

val quantile : histogram -> float -> float option
(** [quantile h q] estimates the [q]-th percentile ([q] in [0..100])
    from the buckets: the upper bound of the bucket holding the
    rank-[ceil (q/100 * count)] observation, clamped into the exact
    [[min_v, max_v]] envelope. [None] when [count = 0]; the error is
    bounded by the width of the bucket containing the exact value
    (observations beyond the last bound estimate as [max_v]).
    @raise Invalid_argument when [q] is outside [0..100] or NaN. *)

(** {1 Meters (rolling windows)}

    A meter is a ring of per-second slots: {!mark} adds to the current
    epoch second's slot, {!meter_rates} sums the last 1/10/60 seconds
    (including the current, still-filling one) into per-second rates.
    Memory is fixed (61 slots); old seconds are lazily overwritten as
    the clock advances, so an idle meter decays to 0 without any
    background work. The serve daemon feeds [serve.*.rate] meters so
    [smoothe top] can show live qps / shed / cache-hit rates. *)

type meter_rates = {
  rate_1s : float;
  rate_10s : float;
  rate_60s : float;
  total : float;  (** lifetime sum of all marks *)
}

(** {1 Updates (no-ops while disabled)} *)

val incr : ?by:float -> string -> unit
(** Bump a counter (default [by] 1.0). Counters only go up. *)

val set_gauge : string -> float -> unit
(** Set a gauge to its latest value. *)

val observe : string -> float -> unit
(** Feed one observation into a histogram (count/sum/min/max/last plus
    the log-scale buckets — enough for loss and grad-norm trajectories
    and latency quantiles without unbounded storage). *)

val time : string -> (unit -> 'a) -> 'a
(** [time name f] runs [f] and feeds its wall-clock duration in
    milliseconds into the histogram [name] — for callers that only
    want the latency recorded and not the duration value itself (those
    pair {!Timer.time} with {!observe}, as the serve daemon does for
    [serve.request_ms]). Exactly [f ()] while {!Obs} is disabled: no
    clock is read. *)

val mark : ?by:float -> ?now:float -> string -> unit
(** Add [by] (default 1.0) to the meter's current one-second slot.
    [now] overrides the clock ({!Timer.now}) — tests drive rotation
    deterministically with a fake clock. *)

(** {1 Reads (always live)} *)

val counter_value : string -> float
(** 0.0 when the counter was never bumped. *)

val gauge_value : string -> float

val histogram_stats : string -> histogram option
(** A snapshot copy: the returned [buckets] array is private to the
    caller. *)

val histogram_quantile : string -> float -> float option
(** [quantile] on the named histogram; [None] when absent or empty. *)

val meter_rates : ?now:float -> string -> meter_rates option
(** [None] when no meter of that name exists. *)

val names : unit -> string list
(** Sorted. *)

val reset : unit -> unit

type value =
  | Counter_v of float
  | Gauge_v of float
  | Histogram_v of histogram
  | Meter_v of meter_rates

val dump : ?now:float -> unit -> (string * value) list
(** Every cell's current value in one registry transaction, sorted by
    name — the raw feed behind {!snapshot} and the Prometheus
    exposition ({!Prom.render}). *)

(** {1 Scoping} *)

val scoped : (unit -> 'a) -> 'a
(** [scoped f] runs [f] against a fresh, empty registry private to the
    current domain (restored afterwards, also on raise). Reads inside
    [f] see only what [f] recorded; the enclosing registry is
    untouched. This is how parallel bench tasks keep per-case
    counters without tearing each other's [reset]. *)

val snapshot : ?now:float -> unit -> Json.t
(** One JSON object keyed by metric name; each value is an object with
    a ["type"] field ("counter" / "gauge" / "histogram" / "meter") and
    the metric's current numbers. Histograms add the derived ["mean"]
    (NaN-safe, see above), ["p50"]/["p95"]/["p99"] estimates ([null]
    when empty), the ["non_finite"] quarantine count, and the occupied
    ["buckets"] as [[upper_bound, count]] pairs (the overflow bucket's
    bound is [null]). Meters carry ["total"] and the three window
    rates. *)
