(** A process-wide registry of named counters, gauges and histograms.

    Updates ({!incr}, {!set_gauge}, {!observe}) are no-ops while
    {!Obs} is disabled, so instrumented hot paths cost one branch.
    Reads and {!snapshot} always work on whatever was recorded.

    The registry is domain-safe: every operation — including
    {!reset}, {!names} and {!snapshot} — is one atomic registry
    transaction, so a reset racing an increment can never observe a
    half-registered cell, and concurrent increments of the same
    counter never lose updates. Code that wants counters isolated
    from other pool tasks (the bench sweeps) runs under {!scoped}.

    Metric names are dotted lowercase strings grouped by subsystem,
    e.g. [lp.pivots], [tensor.matexp_squarings], [smoothe.loss]; the
    full taxonomy is documented in DESIGN.md ("Observability"). *)

type histogram = {
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  last : float;
}

(** {1 Updates (no-ops while disabled)} *)

val incr : ?by:float -> string -> unit
(** Bump a counter (default [by] 1.0). Counters only go up. *)

val set_gauge : string -> float -> unit
(** Set a gauge to its latest value. *)

val observe : string -> float -> unit
(** Feed one observation into a histogram (count/sum/min/max/last —
    enough for loss and grad-norm trajectories without unbounded
    storage). *)

val time : string -> (unit -> 'a) -> 'a
(** [time name f] runs [f] and feeds its wall-clock duration in
    milliseconds into the histogram [name] — for callers that only
    want the latency recorded and not the duration value itself (those
    pair {!Timer.time} with {!observe}, as the serve daemon does for
    [serve.request_ms]). Exactly [f ()] while {!Obs} is disabled: no
    clock is read. *)

(** {1 Reads (always live)} *)

val counter_value : string -> float
(** 0.0 when the counter was never bumped. *)

val gauge_value : string -> float

val histogram_stats : string -> histogram option

val names : unit -> string list
(** Sorted. *)

val reset : unit -> unit

(** {1 Scoping} *)

val scoped : (unit -> 'a) -> 'a
(** [scoped f] runs [f] against a fresh, empty registry private to the
    current domain (restored afterwards, also on raise). Reads inside
    [f] see only what [f] recorded; the enclosing registry is
    untouched. This is how parallel bench tasks keep per-case
    counters without tearing each other's [reset]. *)

val snapshot : unit -> Json.t
(** One JSON object keyed by metric name; each value is an object with
    a ["type"] field ("counter" / "gauge" / "histogram") and the
    metric's current numbers (histograms add a derived ["mean"]). *)
