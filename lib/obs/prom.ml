(* Prometheus text exposition format (version 0.0.4) over the metrics
   registry. Written by hand against the format spec: one metric family
   per cell, `# TYPE` headers, cumulative `_bucket{le="..."}` series
   for histograms, `window`-labelled gauges for meters. *)

let sane_char c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_'

let sane name = "smoothe_" ^ String.map sane_char name

(* %h-style output is not valid Prometheus; %.17g round-trips doubles
   and stays within the format's float grammar *)
let num v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else Printf.sprintf "%.17g" v

let render_cell buf name value =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n = sane name in
  match (value : Metrics.value) with
  | Metrics.Counter_v v ->
      p "# TYPE %s counter\n" n;
      p "%s %s\n" n (num v)
  | Metrics.Gauge_v v ->
      p "# TYPE %s gauge\n" n;
      p "%s %s\n" n (num v)
  | Metrics.Histogram_v h ->
      p "# TYPE %s histogram\n" n;
      let cumulative = ref 0 in
      Array.iteri
        (fun i c ->
          cumulative := !cumulative + c;
          (* only emit a bound when something below it exists — the 65
             series would otherwise dominate the exposition *)
          if c > 0 && i < Metrics.bucket_count then
            p "%s_bucket{le=\"%s\"} %d\n" n (num (Metrics.bucket_bound i)) !cumulative)
        h.Metrics.buckets;
      p "%s_bucket{le=\"+Inf\"} %d\n" n h.Metrics.count;
      p "%s_sum %s\n" n (num h.Metrics.sum);
      p "%s_count %d\n" n h.Metrics.count;
      if h.Metrics.non_finite > 0 then begin
        p "# TYPE %s_non_finite counter\n" n;
        p "%s_non_finite %d\n" n h.Metrics.non_finite
      end
  | Metrics.Meter_v r ->
      p "# TYPE %s_total counter\n" n;
      p "%s_total %s\n" n (num r.Metrics.total);
      p "# TYPE %s_rate gauge\n" n;
      p "%s_rate{window=\"1s\"} %s\n" n (num r.Metrics.rate_1s);
      p "%s_rate{window=\"10s\"} %s\n" n (num r.Metrics.rate_10s);
      p "%s_rate{window=\"60s\"} %s\n" n (num r.Metrics.rate_60s)

let render ?now () =
  let buf = Buffer.create 4096 in
  List.iter (fun (name, v) -> render_cell buf name v) (Metrics.dump ?now ());
  Buffer.contents buf
