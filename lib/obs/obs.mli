(** Global observability switch.

    The whole observability layer — {!Trace} spans and {!Metrics}
    updates — is gated on one sink. With the sink disabled (the
    default) every hook degenerates to a branch on a [bool ref], no
    timestamps are read and nothing is allocated, so an instrumented
    build behaves bit-identically to an uninstrumented one. Enabling
    the sink records spans and metric updates into in-memory stores
    that the CLI, bench harness and tests export. *)

type sink =
  | Disabled  (** the default: every hook is a no-op *)
  | Memory  (** record spans and metrics into the in-process stores *)

val on : bool ref
(** The raw flag, for hot paths: [if !Obs.on then ...]. Prefer the
    functions below everywhere else.

    Domain discipline: the flag is a plain [ref] on purpose (an
    [Atomic] read per tensor op would defeat the point of the gate).
    Flip it only while no pool tasks are in flight — the harness
    enables the sink before fanning out and restores it after the
    join; workers treat it as read-only. *)

val sink : unit -> sink
val set_sink : sink -> unit

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val with_enabled : (unit -> 'a) -> 'a
(** Run a thunk with the sink enabled, restoring the previous sink
    afterwards (also on exceptions). *)
