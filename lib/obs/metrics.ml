type histogram = {
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  last : float;
}

type cell =
  | Counter of float ref
  | Gauge of float ref
  | Histogram of histogram ref

let registry : (string, cell) Hashtbl.t = Hashtbl.create 64

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"

let find_or_create name make =
  match Hashtbl.find_opt registry name with
  | Some cell -> cell
  | None ->
      let cell = make () in
      Hashtbl.replace registry name cell;
      cell

let wrong_kind name cell want =
  invalid_arg
    (Printf.sprintf "Metrics: %S is a %s, not a %s" name (kind_name cell) want)

let incr ?(by = 1.0) name =
  if !Obs.on then
    match find_or_create name (fun () -> Counter (ref 0.0)) with
    | Counter r -> r := !r +. by
    | cell -> wrong_kind name cell "counter"

let set_gauge name v =
  if !Obs.on then
    match find_or_create name (fun () -> Gauge (ref 0.0)) with
    | Gauge r -> r := v
    | cell -> wrong_kind name cell "gauge"

let empty_histogram = { count = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity; last = 0.0 }

let observe name v =
  if !Obs.on then
    match find_or_create name (fun () -> Histogram (ref empty_histogram)) with
    | Histogram r ->
        let h = !r in
        r :=
          {
            count = h.count + 1;
            sum = h.sum +. v;
            min_v = Float.min h.min_v v;
            max_v = Float.max h.max_v v;
            last = v;
          }
    | cell -> wrong_kind name cell "histogram"

let counter_value name =
  match Hashtbl.find_opt registry name with Some (Counter r) -> !r | _ -> 0.0

let gauge_value name =
  match Hashtbl.find_opt registry name with Some (Gauge r) -> !r | _ -> 0.0

let histogram_stats name =
  match Hashtbl.find_opt registry name with Some (Histogram r) -> Some !r | _ -> None

let names () =
  Hashtbl.fold (fun name _ acc -> name :: acc) registry [] |> List.sort compare

let reset () = Hashtbl.reset registry

let snapshot () =
  let field name =
    match Hashtbl.find_opt registry name with
    | None -> Json.Null
    | Some (Counter r) ->
        Json.Object [ "type", Json.String "counter"; "value", Json.Number !r ]
    | Some (Gauge r) -> Json.Object [ "type", Json.String "gauge"; "value", Json.Number !r ]
    | Some (Histogram r) ->
        let h = !r in
        let mean = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count in
        Json.Object
          [
            "type", Json.String "histogram";
            "count", Json.Number (float_of_int h.count);
            "sum", Json.Number h.sum;
            "mean", Json.Number mean;
            "min", Json.Number (if h.count = 0 then 0.0 else h.min_v);
            "max", Json.Number (if h.count = 0 then 0.0 else h.max_v);
            "last", Json.Number h.last;
          ]
  in
  Json.Object (List.map (fun name -> name, field name) (names ()))
