(* --- bucketed histograms ------------------------------------------------ *)

(* Fixed log-scale buckets: bound i = 1e-3 * (sqrt 2)^i, i.e. one bucket
   per half power of two from 1e-3 up to ~3e6, plus an overflow bucket.
   64 buckets cover nine decades — microsecond-resolution latencies in
   milliseconds up to ~50 minutes — with a worst-case quantile error of
   one bucket (~41% of the value), at 65 ints of memory per histogram. *)
let bucket_count = 64

let bucket_bound =
  let bounds =
    Array.init bucket_count (fun i -> 1e-3 *. (Float.sqrt 2.0 ** float_of_int i))
  in
  fun i -> bounds.(i)

(* Least bucket whose upper bound contains [v]; [bucket_count] is the
   overflow bucket. Non-positive values land in bucket 0. *)
let bucket_of v =
  if not (v > bucket_bound 0) then 0
  else if v > bucket_bound (bucket_count - 1) then bucket_count
  else begin
    (* binary search: least i with v <= bound i *)
    let lo = ref 0 and hi = ref (bucket_count - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= bucket_bound mid then hi := mid else lo := mid + 1
    done;
    !lo
  end

type histogram = {
  count : int;
  non_finite : int;
  sum : float;
  min_v : float;
  max_v : float;
  last : float;
  buckets : int array;
}

let empty_histogram () =
  {
    count = 0;
    non_finite = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
    last = 0.0;
    buckets = Array.make (bucket_count + 1) 0;
  }

(* NaN-safe by construction: non-finite observations are quarantined in
   [non_finite] and never touch [sum]/[min_v]/[max_v]/[buckets], so the
   derived mean of a histogram that saw any finite value is always a
   finite number, and an all-NaN histogram reports count = 0. *)
let hist_observe h v =
  if not (Float.is_finite v) then { h with non_finite = h.non_finite + 1 }
  else begin
    h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
    {
      h with
      count = h.count + 1;
      sum = h.sum +. v;
      min_v = Float.min h.min_v v;
      max_v = Float.max h.max_v v;
      last = v;
    }
  end

let mean h = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count

let quantile h q =
  if Float.is_nan q || q < 0.0 || q > 100.0 then
    invalid_arg (Printf.sprintf "Metrics.quantile: q must be in [0,100], got %g" q)
  else if h.count = 0 then None
  else begin
    let rank = Stdlib.max 1 (int_of_float (ceil (q /. 100.0 *. float_of_int h.count))) in
    let b = ref 0 and seen = ref 0 in
    while !seen < rank && !b <= bucket_count do
      seen := !seen + h.buckets.(!b);
      if !seen < rank then incr b
    done;
    (* the rank-th smallest observation lies in bucket !b: estimate it
       as the bucket's upper bound, clamped into the exact [min,max]
       envelope — the error is at most one bucket width *)
    let raw = if !b >= bucket_count then h.max_v else bucket_bound !b in
    Some (Float.max h.min_v (Float.min raw h.max_v))
  end

(* --- meters (rolling windows) ------------------------------------------- *)

(* A ring of per-second slots: slot [sec mod slots] carries the sum of
   marks in epoch second [sec], lazily zeroed when the second moves on.
   61 slots back a 60 s window that can never alias the current second. *)
let meter_slots = 61

type meter = {
  m_sums : float array;
  m_secs : int array;  (** epoch second each slot currently describes *)
  mutable m_total : float;
}

type meter_rates = {
  rate_1s : float;
  rate_10s : float;
  rate_60s : float;
  total : float;
}

let empty_meter () =
  { m_sums = Array.make meter_slots 0.0; m_secs = Array.make meter_slots min_int; m_total = 0.0 }

let meter_mark m ~now by =
  let sec = int_of_float (Float.floor now) in
  let idx = ((sec mod meter_slots) + meter_slots) mod meter_slots in
  if m.m_secs.(idx) <> sec then begin
    m.m_secs.(idx) <- sec;
    m.m_sums.(idx) <- 0.0
  end;
  m.m_sums.(idx) <- m.m_sums.(idx) +. by;
  m.m_total <- m.m_total +. by

(* Sum of the [w] most recent seconds including the current (partial)
   one, over [w]: marks show up in the 1 s rate immediately, at the
   price of the newest second being under way. *)
let meter_rate m ~now w =
  let sec = int_of_float (Float.floor now) in
  let acc = ref 0.0 in
  for s = sec - w + 1 to sec do
    let idx = ((s mod meter_slots) + meter_slots) mod meter_slots in
    if m.m_secs.(idx) = s then acc := !acc +. m.m_sums.(idx)
  done;
  !acc /. float_of_int w

let meter_rates_of m ~now =
  {
    rate_1s = meter_rate m ~now 1;
    rate_10s = meter_rate m ~now 10;
    rate_60s = meter_rate m ~now 60;
    total = m.m_total;
  }

(* --- registry ----------------------------------------------------------- *)

type cell =
  | Counter of float ref
  | Gauge of float ref
  | Histogram of histogram ref
  | Meter of meter

let global : (string, cell) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

(* A scoped registry installed by {!scoped} for the current domain.
   Pool tasks that want isolated counters run under one; everything
   else shares [global]. *)
let scope_key : (string, cell) Hashtbl.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(* Run [f] on the registry in scope, atomically. A scoped registry is
   domain-local so only the global one needs the lock; either way [f]
   must not re-enter the registry (the lock is not reentrant), which
   is why every public operation below is a single [with_registry]. *)
let with_registry f =
  match !(Domain.DLS.get scope_key) with
  | Some tbl -> f tbl
  | None -> Mutex.protect lock (fun () -> f global)

let scoped f =
  let slot = Domain.DLS.get scope_key in
  let saved = !slot in
  slot := Some (Hashtbl.create 64);
  Fun.protect ~finally:(fun () -> slot := saved) f

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"
  | Meter _ -> "meter"

let find_or_create tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some cell -> cell
  | None ->
      let cell = make () in
      Hashtbl.replace tbl name cell;
      cell

let wrong_kind name cell want =
  invalid_arg
    (Printf.sprintf "Metrics: %S is a %s, not a %s" name (kind_name cell) want)

let incr ?(by = 1.0) name =
  if !Obs.on then
    with_registry (fun tbl ->
        match find_or_create tbl name (fun () -> Counter (ref 0.0)) with
        | Counter r -> r := !r +. by
        | cell -> wrong_kind name cell "counter")

let set_gauge name v =
  if !Obs.on then
    with_registry (fun tbl ->
        match find_or_create tbl name (fun () -> Gauge (ref 0.0)) with
        | Gauge r -> r := v
        | cell -> wrong_kind name cell "gauge")

let observe name v =
  if !Obs.on then
    with_registry (fun tbl ->
        match find_or_create tbl name (fun () -> Histogram (ref (empty_histogram ()))) with
        | Histogram r -> r := hist_observe !r v
        | cell -> wrong_kind name cell "histogram")

let time name f =
  if !Obs.on then begin
    let v, dt = Timer.time f in
    observe name (dt *. 1000.0);
    v
  end
  else f ()

let mark ?(by = 1.0) ?now name =
  if !Obs.on then begin
    let now = match now with Some t -> t | None -> Timer.now () in
    with_registry (fun tbl ->
        match find_or_create tbl name (fun () -> Meter (empty_meter ())) with
        | Meter m -> meter_mark m ~now by
        | cell -> wrong_kind name cell "meter")
  end

let counter_value name =
  with_registry (fun tbl ->
      match Hashtbl.find_opt tbl name with Some (Counter r) -> !r | _ -> 0.0)

let gauge_value name =
  with_registry (fun tbl ->
      match Hashtbl.find_opt tbl name with Some (Gauge r) -> !r | _ -> 0.0)

let histogram_stats name =
  with_registry (fun tbl ->
      match Hashtbl.find_opt tbl name with
      | Some (Histogram r) -> Some { !r with buckets = Array.copy !r.buckets }
      | _ -> None)

let histogram_quantile name q =
  match histogram_stats name with None -> None | Some h -> quantile h q

let meter_rates ?now name =
  let now = match now with Some t -> t | None -> Timer.now () in
  with_registry (fun tbl ->
      match Hashtbl.find_opt tbl name with
      | Some (Meter m) -> Some (meter_rates_of m ~now)
      | _ -> None)

let sorted_names tbl =
  Hashtbl.fold (fun name _ acc -> name :: acc) tbl [] |> List.sort compare

let names () = with_registry sorted_names

let reset () = with_registry Hashtbl.reset

type value =
  | Counter_v of float
  | Gauge_v of float
  | Histogram_v of histogram
  | Meter_v of meter_rates

let dump ?now () =
  let now = match now with Some t -> t | None -> Timer.now () in
  with_registry (fun tbl ->
      List.map
        (fun name ->
          let v =
            match Hashtbl.find tbl name with
            | Counter r -> Counter_v !r
            | Gauge r -> Gauge_v !r
            | Histogram r -> Histogram_v { !r with buckets = Array.copy !r.buckets }
            | Meter m -> Meter_v (meter_rates_of m ~now)
          in
          (name, v))
        (sorted_names tbl))

let histogram_json h =
  let q p = match quantile h p with Some v -> Json.Number v | None -> Json.Null in
  let buckets =
    (* only occupied buckets: [upper bound, count] pairs, the overflow
       bucket rendered with a null bound *)
    List.filter_map
      (fun i ->
        if h.buckets.(i) = 0 then None
        else
          Some
            (Json.Array
               [
                 (if i = bucket_count then Json.Null else Json.Number (bucket_bound i));
                 Json.Number (float_of_int h.buckets.(i));
               ]))
      (List.init (bucket_count + 1) Fun.id)
  in
  Json.Object
    [
      ("type", Json.String "histogram");
      ("count", Json.Number (float_of_int h.count));
      ("non_finite", Json.Number (float_of_int h.non_finite));
      ("sum", Json.Number h.sum);
      ("mean", Json.Number (mean h));
      ("min", Json.Number (if h.count = 0 then 0.0 else h.min_v));
      ("max", Json.Number (if h.count = 0 then 0.0 else h.max_v));
      ("last", Json.Number h.last);
      ("p50", q 50.0);
      ("p95", q 95.0);
      ("p99", q 99.0);
      ("buckets", Json.Array buckets);
    ]

let value_json = function
  | Counter_v v -> Json.Object [ ("type", Json.String "counter"); ("value", Json.Number v) ]
  | Gauge_v v -> Json.Object [ ("type", Json.String "gauge"); ("value", Json.Number v) ]
  | Histogram_v h -> histogram_json h
  | Meter_v r ->
      Json.Object
        [
          ("type", Json.String "meter");
          ("total", Json.Number r.total);
          ("rate_1s", Json.Number r.rate_1s);
          ("rate_10s", Json.Number r.rate_10s);
          ("rate_60s", Json.Number r.rate_60s);
        ]

let snapshot ?now () =
  (* [dump] is one registry transaction: [find_opt] per name would
     deadlock on the non-reentrant lock and could tear across
     concurrent updates *)
  Json.Object (List.map (fun (name, v) -> (name, value_json v)) (dump ?now ()))
