type histogram = {
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  last : float;
}

type cell =
  | Counter of float ref
  | Gauge of float ref
  | Histogram of histogram ref

let global : (string, cell) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

(* A scoped registry installed by {!scoped} for the current domain.
   Pool tasks that want isolated counters run under one; everything
   else shares [global]. *)
let scope_key : (string, cell) Hashtbl.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(* Run [f] on the registry in scope, atomically. A scoped registry is
   domain-local so only the global one needs the lock; either way [f]
   must not re-enter the registry (the lock is not reentrant), which
   is why every public operation below is a single [with_registry]. *)
let with_registry f =
  match !(Domain.DLS.get scope_key) with
  | Some tbl -> f tbl
  | None -> Mutex.protect lock (fun () -> f global)

let scoped f =
  let slot = Domain.DLS.get scope_key in
  let saved = !slot in
  slot := Some (Hashtbl.create 64);
  Fun.protect ~finally:(fun () -> slot := saved) f

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"

let find_or_create tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some cell -> cell
  | None ->
      let cell = make () in
      Hashtbl.replace tbl name cell;
      cell

let wrong_kind name cell want =
  invalid_arg
    (Printf.sprintf "Metrics: %S is a %s, not a %s" name (kind_name cell) want)

let incr ?(by = 1.0) name =
  if !Obs.on then
    with_registry (fun tbl ->
        match find_or_create tbl name (fun () -> Counter (ref 0.0)) with
        | Counter r -> r := !r +. by
        | cell -> wrong_kind name cell "counter")

let set_gauge name v =
  if !Obs.on then
    with_registry (fun tbl ->
        match find_or_create tbl name (fun () -> Gauge (ref 0.0)) with
        | Gauge r -> r := v
        | cell -> wrong_kind name cell "gauge")

let empty_histogram = { count = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity; last = 0.0 }

let observe name v =
  if !Obs.on then
    with_registry (fun tbl ->
        match find_or_create tbl name (fun () -> Histogram (ref empty_histogram)) with
        | Histogram r ->
            let h = !r in
            r :=
              {
                count = h.count + 1;
                sum = h.sum +. v;
                min_v = Float.min h.min_v v;
                max_v = Float.max h.max_v v;
                last = v;
              }
        | cell -> wrong_kind name cell "histogram")

let time name f =
  if !Obs.on then begin
    let v, dt = Timer.time f in
    observe name (dt *. 1000.0);
    v
  end
  else f ()

let counter_value name =
  with_registry (fun tbl ->
      match Hashtbl.find_opt tbl name with Some (Counter r) -> !r | _ -> 0.0)

let gauge_value name =
  with_registry (fun tbl ->
      match Hashtbl.find_opt tbl name with Some (Gauge r) -> !r | _ -> 0.0)

let histogram_stats name =
  with_registry (fun tbl ->
      match Hashtbl.find_opt tbl name with Some (Histogram r) -> Some !r | _ -> None)

let sorted_names tbl =
  Hashtbl.fold (fun name _ acc -> name :: acc) tbl [] |> List.sort compare

let names () = with_registry sorted_names

let reset () = with_registry Hashtbl.reset

let snapshot () =
  (* one registry transaction: [find_opt] per name would deadlock on
     the non-reentrant lock and could tear across concurrent updates *)
  with_registry (fun tbl ->
      let field name =
        match Hashtbl.find_opt tbl name with
        | None -> Json.Null
        | Some (Counter r) ->
            Json.Object [ "type", Json.String "counter"; "value", Json.Number !r ]
        | Some (Gauge r) -> Json.Object [ "type", Json.String "gauge"; "value", Json.Number !r ]
        | Some (Histogram r) ->
            let h = !r in
            let mean = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count in
            Json.Object
              [
                "type", Json.String "histogram";
                "count", Json.Number (float_of_int h.count);
                "sum", Json.Number h.sum;
                "mean", Json.Number mean;
                "min", Json.Number (if h.count = 0 then 0.0 else h.min_v);
                "max", Json.Number (if h.count = 0 then 0.0 else h.max_v);
                "last", Json.Number h.last;
              ]
      in
      Json.Object (List.map (fun name -> name, field name) (sorted_names tbl)))
