type sink = Silent | Memory | Channel of out_channel

let current = ref Silent
let lock = Mutex.create ()
let store : Json.t Vec.t = Vec.create ()

let sink () = !current
let set_sink s = Mutex.protect lock (fun () -> current := s)

let reset () = Mutex.protect lock (fun () -> Vec.clear store)

let line_of_record r = Json.to_string r

let emit ?req ~event fields =
  (* the cheap path first: a silent sink costs one dereference *)
  match !current with
  | Silent -> ()
  | _ ->
      let record =
        Json.Object
          (("ts", Json.Number (Timer.now ()))
           :: ("event", Json.String event)
           :: (match req with None -> [] | Some id -> [ ("req", Json.String id) ])
          @ fields)
      in
      Mutex.protect lock (fun () ->
          match !current with
          | Silent -> ()
          | Memory -> Vec.push store record
          | Channel oc ->
              (* one record per line, flushed: a tail -f on the file
                 always sees whole records *)
              output_string oc (line_of_record record);
              output_char oc '\n';
              flush oc)

let records () = Mutex.protect lock (fun () -> Vec.to_list store)

let lines () = List.map line_of_record (records ())

let with_memory f =
  let saved = Mutex.protect lock (fun () -> !current) in
  set_sink Memory;
  reset ();
  Fun.protect ~finally:(fun () -> set_sink saved) f
