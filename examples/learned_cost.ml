(* Learned (non-linear) cost models, the §5.5 scenario.

   Linear per-node costs cannot capture clustering effects — e.g. in
   technology mapping, two adjacent operations may fuse into one LUT.
   Following the paper we train an MLP correction term on random valid
   extractions and let SmoothE optimise straight through it; the genetic
   algorithm is the only baseline that can consume the same model, and
   "ILP*" (the linear-model optimum re-scored under the MLP model) shows
   what ignoring the non-linearity costs.

   Run with:  dune exec examples/learned_cost.exe *)

let () =
  let g = Flexc_ds.kernel ~name:"cgra_kernel" ~seed:7 ~ops:150 in
  Format.printf "CGRA kernel e-graph: %a@.@." Egraph.Stats.pp (Egraph.Stats.compute g);
  let rng = Rng.create 2025 in

  (* 1. Synthesise training data: random valid solutions with random
     negative "savings" targets (§5.5). *)
  let inputs = Random_walk.dense_dataset rng g ~count:64 in
  let targets = Array.init (Array.length inputs) (fun _ -> -.Rng.float rng 8.0) in
  let mlp = Mlp.create rng ~input_dim:(Egraph.num_nodes g) in
  let report = Mlp.train ~epochs:30 rng mlp ~inputs ~targets in
  Printf.printf "MLP (N->64->64->8->1) trained: MSE %.4f -> %.4f over %d epochs\n"
    report.Mlp.initial_loss report.Mlp.final_loss report.Mlp.epochs;

  (* 2. The full model is linear + MLP correction. *)
  let model = Cost_model.mlp_corrected ~linear:g.Egraph.costs mlp in

  (* 3. Compare the methods that can handle it. *)
  let config =
    {
      Smoothe_config.default with
      Smoothe_config.assumption = Smoothe_config.Correlated;
      batch = 16;
      (* non-linear models need more optimisation steps (§5.5) *)
      max_iters = 400;
      patience = 80;
    }
  in
  let smoothe = (Smoothe_extract.extract ~config ~model g).Smoothe_extract.result in
  Printf.printf "\nSmoothE  : model cost %10.3f   (%.2fs)\n" smoothe.Extractor.cost
    smoothe.Extractor.time_s;

  let genetic = Genetic.extract ~model (Rng.create 11) g in
  Printf.printf "genetic  : model cost %10.3f   (%.2fs)\n" genetic.Extractor.cost
    genetic.Extractor.time_s;

  let ilp_star =
    let warm = (Greedy_dag.extract g).Extractor.solution in
    let linear_opt = Ilp.extract ~time_limit:15.0 ?warm_start:warm ~profile:Bnb.cplex_like g in
    match linear_opt.Extractor.solution with
    | Some s -> Cost_model.dense_solution model g s
    | None -> infinity
  in
  Printf.printf "ILP*     : model cost %10.3f   (linear-model optimum, re-scored)\n" ilp_star;

  let best = Float.min smoothe.Extractor.cost (Float.min genetic.Extractor.cost ilp_star) in
  Printf.printf "\nbest method: %s\n"
    (if best = smoothe.Extractor.cost then "SmoothE"
     else if best = genetic.Extractor.cost then "genetic"
     else "ILP*")
