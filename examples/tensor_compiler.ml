(* Tensor-graph superoptimisation (the tensat scenario, §5.2).

   We write a small residual CNN as a term, saturate it with
   TENSAT-style rewrite rules (operator fusion, matmul associativity,
   conv composition...), and extract the cheapest equivalent graph with
   SmoothE under a GPU-kernel-latency cost model. The identity-
   introduction rule creates cyclic e-classes, so this example also
   exercises the NOTEARS acyclicity machinery end-to-end.

   Run with:  dune exec examples/tensor_compiler.exe *)

let () =
  let open Term in
  (* a toy residual network: two residual blocks and a linear head *)
  let block x i =
    let branch =
      app "conv" [ app "relu" [ app "conv" [ x; atom (Printf.sprintf "w_a%d" i) ] ];
                   atom (Printf.sprintf "w_b%d" i) ]
    in
    app "relu" [ app "add" [ x; branch ] ]
  in
  let body = block (block (atom "input") 1) 2 in
  let head =
    app "add"
      [
        app "matmul" [ body; atom "w_head1" ];
        app "matmul" [ body; atom "w_head2" ];
      ]
  in
  Printf.printf "source graph (%d ops): %s\n\n" (size head) (to_string head);

  let g = Saturate.create () in
  let root = Saturate.add_term g head in
  let report = Saturate.run ~node_limit:4000 g Tensat_ds.rules in
  Printf.printf "saturation: %d rounds, %d e-nodes, %d e-classes, saturated=%b\n"
    report.Saturate.iterations report.Saturate.final_nodes report.Saturate.final_classes
    report.Saturate.saturated;
  List.iter
    (fun (rule, n) -> Printf.printf "  rule %-16s fired %d times\n" rule n)
    report.Saturate.applied;

  let egraph = Saturate.export ~name:"resnet-toy" g ~root ~cost:Tensat_ds.op_cost in
  Format.printf "\ne-graph: %a@." Egraph.Stats.pp (Egraph.Stats.compute egraph);

  (* baseline cost: the original graph (greedy extraction before any
     sharing-aware optimisation approximates it) *)
  let greedy = Greedy.extract egraph in
  Printf.printf "\ngreedy extraction : %.0f\n" greedy.Extractor.cost;
  let config =
    {
      Smoothe_config.default with
      Smoothe_config.assumption = Smoothe_config.Independent;
      batch = 16;
    }
  in
  let run = Smoothe_extract.extract ~config egraph in
  let smoothe = run.Smoothe_extract.result in
  Printf.printf "SmoothE extraction: %.0f (%.2fs, %d iterations)\n" smoothe.Extractor.cost
    smoothe.Extractor.time_s run.Smoothe_extract.iterations;

  match smoothe.Extractor.solution with
  | Some s ->
      Printf.printf "\noptimised graph (DAG form):\n%s\n"
        (Extract_term.render_dag (Extract_term.dag_of_solution egraph s))
  | None -> print_endline "no valid extraction (unexpected)"
