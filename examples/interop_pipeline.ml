(* Interop pipeline: working with external e-graphs.

   Three of the paper's datasets ship in the egraphs-good extraction-gym
   JSON format. This example walks the full workshop loop on such a
   file: import, inspect, extract with several methods (including the
   TENSAT-style cycle-pruning ILP the paper discusses in §2 and the
   simulated-annealing meta-heuristic), and render the winning
   extraction as Graphviz.

   Run with:  dune exec examples/interop_pipeline.exe *)

let () =
  (* 1. Produce a gym-format file (stands in for a downloaded dataset
     dump; any extraction-gym JSON loads the same way). *)
  let original = Tensat_ds.build "ResNet-50" in
  let path = Filename.temp_file "resnet" ".json" in
  Gym.write_file path original;
  Printf.printf "wrote gym-format file: %s\n" path;

  (* 2. Import and inspect. *)
  let g = Gym.read_file path in
  Sys.remove path;
  Format.printf "imported: %a@.@." Egraph.Stats.pp (Egraph.Stats.compute g);

  (* 3. Extract with a spread of methods. *)
  let line label (r : Extractor.r) =
    Printf.printf "%-14s cost %10.1f   time %6.2fs   %s\n" label r.Extractor.cost
      r.Extractor.time_s
      (String.concat " "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) r.Extractor.notes))
  in
  line "greedy" (Greedy.extract g);
  line "heuristic+" (Greedy_dag.extract g);
  line "annealing" (Annealing.extract (Rng.create 3) g);
  (* the §2 trade-off: pruning cycles first makes the ILP cheap but can
     cost quality on graphs whose best derivations pass through cycles *)
  line "ilp-pruned" (Acyclic_prune.extract ~time_limit:15.0 g);
  line "ilp-full" (Ilp.extract ~time_limit:15.0 ~profile:Bnb.cplex_like g);
  let config =
    {
      Smoothe_config.default with
      Smoothe_config.assumption = Smoothe_config.Independent;
      batch = 16;
    }
  in
  let run = Smoothe_extract.extract ~config g in
  line "smoothe" run.Smoothe_extract.result;

  (* 4. Render the SmoothE extraction for graphviz. *)
  match run.Smoothe_extract.result.Extractor.solution with
  | Some s ->
      let dot = Filename.temp_file "resnet" ".dot" in
      Dot.write_file ~solution:s dot g;
      Printf.printf "\nGraphviz rendering (selected e-nodes highlighted): %s\n" dot;
      Printf.printf "  (render with: dot -Tpdf %s -o resnet.pdf)\n" dot
  | None -> print_endline "no extraction to render"
