(* Datapath synthesis (the rover scenario, §5.2 / Table 3).

   A 12-tap FIR filter's constant multiplications admit many adder-graph
   decompositions sharing intermediate "fundamentals". We compare every
   extractor on combinational-area cost and show the anytime behaviour
   that Figure 4 plots: SmoothE reaches ILP-level quality in a fraction
   of the solve time.

   Run with:  dune exec examples/datapath_synthesis.exe *)

let () =
  let g = Rover_ds.fir ~name:"fir_demo" ~seed:42 ~taps:12 in
  Format.printf "FIR datapath e-graph: %a@.@." Egraph.Stats.pp (Egraph.Stats.compute g);

  let line label (r : Extractor.r) =
    Printf.printf "%-16s area %8.1f   time %6.2fs%s\n" label r.Extractor.cost r.Extractor.time_s
      (if r.Extractor.proved_optimal then "  (proved optimal)" else "")
  in
  line "greedy (egg)" (Greedy.extract g);
  line "heuristic+" (Greedy_dag.extract g);
  let genetic = Genetic.extract (Rng.create 1) g in
  line "genetic" genetic;
  let ilp = Ilp.extract ~time_limit:20.0 ~profile:Bnb.cplex_like g in
  line "ILP (cplex-like)" ilp;
  let config =
    {
      Smoothe_config.default with
      Smoothe_config.assumption = Smoothe_config.Independent;
      batch = 16;
    }
  in
  let run = Smoothe_extract.extract ~config g in
  line "SmoothE" run.Smoothe_extract.result;

  print_endline "\nAnytime trace (time s -> best area found so far):";
  let show_trace name trace =
    Printf.printf "  %-10s %s\n" name
      (String.concat "  "
         (List.map (fun (t, c) -> Printf.sprintf "%.2fs:%.0f" t c) trace))
  in
  show_trace "ILP" ilp.Extractor.trace;
  show_trace "SmoothE" run.Smoothe_extract.result.Extractor.trace;

  (* The extracted datapath as shared hardware (each binder = one
     physical operator instance). *)
  match run.Smoothe_extract.result.Extractor.solution with
  | Some s ->
      let dag = Extract_term.dag_of_solution g s in
      Printf.printf "\nSynthesised datapath: %d operator instances (first 12 shown)\n"
        (List.length dag);
      List.iteri
        (fun i b -> if i < 12 then print_endline ("  " ^ Extract_term.render_dag [ b ]))
        dag
  | None -> ()
