(* Quickstart: the paper's running example (Figures 1-3) end to end.

   We build the e-graph for sec²α + tan α by equality saturation with
   two trigonometric rewrites, then extract with the egg greedy
   heuristic, exact ILP, and SmoothE, reproducing the 27-vs-19 gap the
   paper uses to motivate DAG-aware extraction.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Build the e-graph by equality saturation. *)
  let g = Saturate.create () in
  let open Term in
  let input =
    app "+" [ app "sq" [ app "sec" [ atom "alpha" ] ]; app "tan" [ atom "alpha" ] ]
  in
  Printf.printf "input term         : %s\n" (to_string input);
  let root = Saturate.add_term g input in
  let rules =
    [
      rule ~name:"sec-to-recip-cos" (papp "sec" [ pvar "a" ])
        (papp "recip" [ papp "cos" [ pvar "a" ] ]);
      rule ~name:"pythagorean"
        (papp "sq" [ papp "sec" [ pvar "a" ] ])
        (papp "+" [ patom "one"; papp "sq" [ papp "tan" [ pvar "a" ] ] ]);
    ]
  in
  let report = Saturate.run g rules in
  Printf.printf "saturation         : %d iterations, saturated=%b, %d e-nodes / %d e-classes\n"
    report.Saturate.iterations report.Saturate.saturated report.Saturate.final_nodes
    report.Saturate.final_classes;

  (* 2. Freeze with the Figure 2 cost model. *)
  let cost op _arity =
    match op with
    | "+" -> 2.0
    | "sq" | "recip" -> 5.0
    | "sec" | "cos" | "tan" -> 10.0
    | _ -> 0.0
  in
  let egraph = Saturate.export ~name:"quickstart" g ~root ~cost in
  Format.printf "e-graph            : %a@." Egraph.Stats.pp (Egraph.Stats.compute egraph);

  (* 3. Extract with three methods. *)
  let show label (r : Extractor.r) =
    Printf.printf "%-19s: cost %.0f in %.3fs%s\n" label r.Extractor.cost r.Extractor.time_s
      (if r.Extractor.proved_optimal then " (proved optimal)" else "");
    match r.Extractor.solution with
    | Some s -> Printf.printf "    term: %s\n" (Term.to_string (Extract_term.of_solution egraph s))
    | None -> ()
  in
  show "greedy (egg)" (Greedy.extract egraph);
  show "ILP (cplex-like)" (Ilp.extract ~time_limit:10.0 ~profile:Bnb.cplex_like egraph);
  let config = { Smoothe_config.default with Smoothe_config.batch = 8; max_iters = 100 } in
  let run = Smoothe_extract.extract ~config egraph in
  show "SmoothE" run.Smoothe_extract.result;

  (* 4. Show the sharing that makes 19 possible. *)
  match run.Smoothe_extract.result.Extractor.solution with
  | Some s ->
      Printf.printf "\nDAG form of the SmoothE extraction (tan α is computed once):\n%s\n"
        (Extract_term.render_dag (Extract_term.dag_of_solution egraph s))
  | None -> print_endline "SmoothE found no valid solution (unexpected)"
